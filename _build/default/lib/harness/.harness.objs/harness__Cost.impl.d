lib/harness/cost.ml:
