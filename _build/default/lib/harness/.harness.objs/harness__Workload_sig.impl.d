lib/harness/workload_sig.ml: Kernel Sim
