lib/harness/protocol.ml: Cluster Cost Kernel Outcome Txn Types
