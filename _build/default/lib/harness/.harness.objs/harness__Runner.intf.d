lib/harness/runner.mli: Cost Protocol Workload_sig
