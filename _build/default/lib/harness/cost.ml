(* CPU cost model for servicing a message, in seconds. The paper's
   experiments are CPU-bound on the servers *handling network
   interrupts* (§5.1), i.e. the dominant cost is per message, with
   smaller per-operation and per-payload terms. This is what makes a
   protocol's message count (rounds) the thing that sets its throughput
   ceiling — the effect behind the gaps in Figures 6 and 7: a protocol
   that needs one round where another needs two saturates at roughly
   twice the load. *)

type t = {
  server_base : float;  (* fixed cost of receiving + answering a message *)
  per_op : float;       (* per read/write operation carried *)
  per_kb : float;       (* per kilobyte of payload *)
  per_dep : float;      (* per dependency entry (transaction reordering) *)
  client_base : float;  (* client-side handling cost *)
}

let default =
  {
    server_base = 40e-6;
    per_op = 0.3e-6;
    per_kb = 0.5e-6;
    per_dep = 0.3e-6;
    client_base = 1e-6;
  }

(* Cost of a server message carrying [ops] operations, [bytes] of
   payload and [deps] dependency entries. *)
let server t ?(ops = 0) ?(bytes = 0) ?(deps = 0) () =
  t.server_base
  +. (t.per_op *. float_of_int ops)
  +. (t.per_kb *. float_of_int bytes /. 1024.0)
  +. (t.per_dep *. float_of_int deps)

let client t = t.client_base
