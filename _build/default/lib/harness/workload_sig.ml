(* A workload is a named generator of transactions. Generators draw
   from a per-client random stream the harness provides, so runs are
   deterministic and independent of client interleaving. *)

type t = {
  name : string;
  gen : Sim.Rng.t -> client:Kernel.Types.node_id -> Kernel.Txn.t;
}
