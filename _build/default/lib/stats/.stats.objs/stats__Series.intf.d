lib/stats/series.mli:
