lib/stats/hist.mli:
