lib/stats/hist.ml: Array Float
