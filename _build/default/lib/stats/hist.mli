(** Log-bucketed histogram (≈4% relative quantile error by default). *)

type t

val create : ?lo:float -> ?hi:float -> ?ratio:float -> unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

(** [percentile t 0.99] is the 99th percentile estimate. *)
val percentile : t -> float -> float

val merge : into:t -> t -> unit
