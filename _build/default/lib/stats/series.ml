(* Fixed-width time buckets accumulating counts — used for
   throughput-over-time plots (failure-recovery experiment, Fig 7c). *)

type t = { width : float; mutable buckets : int array }

let create ?(width = 1.0) () = { width; buckets = Array.make 64 0 }

let add t time =
  if time >= 0.0 then begin
    let i = int_of_float (time /. t.width) in
    if i >= Array.length t.buckets then begin
      let fresh = Array.make (max (i + 1) (2 * Array.length t.buckets)) 0 in
      Array.blit t.buckets 0 fresh 0 (Array.length t.buckets);
      t.buckets <- fresh
    end;
    t.buckets.(i) <- t.buckets.(i) + 1
  end

let width t = t.width

(* (bucket start time, count / width) pairs up to the last non-empty
   bucket. *)
let rates t =
  let last = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then last := i) t.buckets;
  List.init (!last + 1) (fun i ->
      (float_of_int i *. t.width, float_of_int t.buckets.(i) /. t.width))
