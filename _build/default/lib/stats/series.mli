(** Fixed-width time buckets (events per bucket → rates over time). *)

type t

val create : ?width:float -> unit -> t
val add : t -> float -> unit
val width : t -> float

(** (bucket start, events/second) pairs, up to the last non-empty bucket. *)
val rates : t -> (float * float) list
