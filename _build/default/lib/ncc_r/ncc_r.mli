(** Replicated NCC (§4.6): each server leads a Raft group over its
    replica nodes; state-changing protocol messages are replicated and
    responses release only once the changes they depend on are durable.
    Follower replicas apply the committed message stream to shadow NCC
    state machines.

    Run with [Runner.config.replicas_per_server >= 1] (2 gives
    majority-of-3 groups). With zero replicas the groups are singletons
    and replication is a no-op gate. *)

type mode =
  | Every_request  (** replicate each Exec/Decide/Retry (§4.6 basic scheme) *)
  | Deferred
      (** replicate once at the transaction's last shot (the paper's
          future-work optimization) *)

type msg = App of Ncc.Msg.msg | Raft of Ncc.Msg.msg Rsm.Raft.msg

(** Raft election/heartbeat periods for the server groups; wide-area
    deployments need timeouts well above the replica round trip. *)
type raft_timeouts = { election : float; heartbeat : float }

val default_timeouts : raft_timeouts

val make_protocol :
  ?config:Ncc.Msg.config -> ?mode:mode -> ?raft_timeouts:raft_timeouts ->
  ?name:string -> unit -> Harness.Protocol.t

(** NCC-R: every state change replicated before exposure. *)
val protocol : Harness.Protocol.t

(** NCC-R-def: replication deferred to the last shot. *)
val protocol_deferred : Harness.Protocol.t

(**/**)

(* Exposed for tests. *)
type server

val make_server :
  Ncc.Msg.config -> mode -> raft_timeouts -> msg Cluster.Net.ctx -> server
val server_handle : server -> src:Kernel.Types.node_id -> msg -> unit
val server_counters : server -> (string * float) list

type replica

val make_replica : Ncc.Msg.config -> raft_timeouts -> msg Cluster.Net.ctx -> replica
val replica_handle : replica -> src:Kernel.Types.node_id -> msg -> unit
