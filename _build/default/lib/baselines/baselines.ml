(* The five baseline concurrency-control protocols the paper evaluates
   against NCC (§5): three strictly serializable (dOCC, d2PL in two
   variants, Janus-CC transaction reordering) and two serializable
   (TAPIR-CC, MVTO). *)

module Common = Common
module Docc = Docc
module D2pl = D2pl
module Tr = Tr
module Tapir = Tapir
module Mvto = Mvto

let docc = Docc.protocol
let d2pl_no_wait = D2pl.no_wait
let d2pl_wound_wait = D2pl.wound_wait
let janus_cc = Tr.protocol
let tapir_cc = Tapir.protocol
let mvto = Mvto.protocol

(* All baselines with their consistency level: [`Strict] ones must pass
   the strict-serializability check, [`Ser] ones only serializability. *)
let all : (Harness.Protocol.t * [ `Strict | `Ser ]) list =
  [
    (docc, `Strict);
    (d2pl_no_wait, `Strict);
    (d2pl_wound_wait, `Strict);
    (janus_cc, `Strict);
    (tapir_cc, `Ser);
    (mvto, `Ser);
  ]
