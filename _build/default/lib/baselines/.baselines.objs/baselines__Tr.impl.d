lib/baselines/tr.ml: Cluster Common Harness Hashtbl Kernel List Mvstore Outcome Ts Txn Types
