lib/baselines/tapir.ml: Cluster Common Harness Hashtbl Kernel List Mvstore Outcome Ts Txn Types
