lib/baselines/baselines.ml: Common D2pl Docc Harness Mvto Tapir Tr
