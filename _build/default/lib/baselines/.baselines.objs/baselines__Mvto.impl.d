lib/baselines/mvto.ml: Cluster Common Harness Hashtbl Kernel List Mvstore Option Outcome Ts Txn Types
