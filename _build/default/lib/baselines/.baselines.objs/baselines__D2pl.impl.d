lib/baselines/d2pl.ml: Cluster Common Harness Hashtbl Kernel List Mvstore Outcome Ts Txn Types
