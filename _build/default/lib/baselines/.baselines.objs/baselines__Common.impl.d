lib/baselines/common.ml: Cluster Hashtbl Kernel List Mvstore Option Outcome Ts Txn Types
