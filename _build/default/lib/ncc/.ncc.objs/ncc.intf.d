lib/ncc/ncc.mli: Client Harness Msg Server
