lib/ncc/client.ml: Cluster Float Hashtbl Kernel List Msg Option Outcome Ts Txn Types
