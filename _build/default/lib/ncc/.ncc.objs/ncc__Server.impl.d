lib/ncc/server.ml: Array Cluster Fun Hashtbl Kernel List Msg Mvstore Ts Types
