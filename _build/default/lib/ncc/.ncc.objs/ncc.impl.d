lib/ncc/ncc.ml: Client Harness Msg Server
