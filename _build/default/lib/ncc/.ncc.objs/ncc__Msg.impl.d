lib/ncc/msg.ml: Array Harness Kernel List Ts Types
