(** NCC: Natural Concurrency Control (Lu et al., OSDI 2023).

    Strictly serializable concurrency control that executes naturally
    consistent transactions at the cost of non-transactional operations:
    one round trip, lock-free, non-blocking in the common case. The
    three design pillars are non-blocking execution (Alg 4.2), decoupled
    response control with response timing control (§4.2), and the
    timestamp-based safeguard (Alg 4.1), complemented by smart retry
    (Alg 4.4), asynchrony-aware timestamps (§4.3), a single-round
    read-only fast path (§4.5) and backup-coordinator recovery (§4.6).

    The protocol values plug into {!Harness.Runner} and
    {!Harness.Testbed}. *)

(** Wire protocol and configuration. *)
module Msg : module type of Msg

(** Server actor: execution, response timing control, smart retry,
    recovery. *)
module Server : module type of Server

(** Client-side coordinator: timestamp pre-assignment, shots, the
    safeguard, smart retry, commit/abort. *)
module Client : module type of Client

val default_config : Msg.config

(** Build a protocol value with a custom configuration (used for the
    ablations and the failure-injection experiment). *)
val make_protocol :
  ?config:Msg.config -> ?name:string -> unit -> Harness.Protocol.t

(** Full NCC: read-only fast path, smart retry, asynchrony-aware
    timestamps, early abort. *)
val protocol : Harness.Protocol.t

(** NCC-RW: the read-only fast path disabled; every transaction runs the
    read-write protocol (the paper's §5 comparison variant). *)
val protocol_rw : Harness.Protocol.t

(** Ablation: smart retry disabled (safeguard misses abort outright). *)
val protocol_no_smart_retry : Harness.Protocol.t

(** Ablation: plain client-clock timestamps (no asynchrony awareness). *)
val protocol_no_async_aware : Harness.Protocol.t

(** Paper-faithful variant: the read-only freshness fence at server
    granularity (more fast-path aborts under writes; see Fig 7a). *)
val protocol_server_fence : Harness.Protocol.t

(** Negative control: response timing control disabled. Re-opens the
    timestamp-inversion pitfall (§3); exists so the tests can show the
    pitfall is real and that the checker catches it. *)
val protocol_no_rtc : Harness.Protocol.t
