lib/mvstore/store.ml: Hashtbl Kernel List Ts Types
