lib/mvstore/locks.ml: Hashtbl Kernel List Queue Ts Types
