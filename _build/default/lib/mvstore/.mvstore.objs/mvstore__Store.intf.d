lib/mvstore/store.mli: Kernel Ts Types
