lib/mvstore/locks.mli: Kernel Ts Types
