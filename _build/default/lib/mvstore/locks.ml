(* A per-server lock table for the distributed 2PL baselines.

   Modes are shared/exclusive with the usual compatibility matrix, plus
   upgrade of a sole shared holder to exclusive. Waiters queue FIFO and
   are granted by callback when compatible — the wound-wait variant
   decides *whether* to wait or wound in the protocol layer, using
   [holders] and [force_release]. *)

open Kernel

type mode = Shared | Exclusive

type owner = { txn : int; ts : Ts.t }

type waiter = { w_owner : owner; w_mode : mode; notify : unit -> unit }

type entry = {
  mutable holders : (owner * mode) list;
  waiters : waiter Queue.t;
}

type t = { locks : (Types.key, entry) Hashtbl.t }

let create () = { locks = Hashtbl.create 256 }

let entry t key =
  match Hashtbl.find_opt t.locks key with
  | Some e -> e
  | None ->
    let e = { holders = []; waiters = Queue.create () } in
    Hashtbl.add t.locks key e;
    e

let holders t key = (entry t key).holders

let compatible e ~txn ~mode =
  match mode with
  | Shared -> List.for_all (fun (o, m) -> m = Shared || o.txn = txn) e.holders
  | Exclusive -> List.for_all (fun (o, _) -> o.txn = txn) e.holders

(* Grant without waiting: either the lock is compatible (including
   re-entrant acquisition and shared->exclusive upgrade when sole
   holder) or the conflicting owners are reported. *)
let try_acquire t key ~owner ~mode =
  let e = entry t key in
  if compatible e ~txn:owner.txn ~mode then begin
    let holders = List.filter (fun (o, _) -> o.txn <> owner.txn) e.holders in
    let prev_mode =
      List.find_map
        (fun (o, m) -> if o.txn = owner.txn then Some m else None)
        e.holders
    in
    let mode =
      match (prev_mode, mode) with Some Exclusive, _ -> Exclusive | _, m -> m
    in
    e.holders <- (owner, mode) :: holders;
    `Granted
  end
  else
    `Conflict
      (List.filter_map
         (fun (o, _) -> if o.txn = owner.txn then None else Some o)
         e.holders)

(* Promote compatible waiters (FIFO; a run of shared waiters is granted
   together). *)
let rec promote t key =
  let e = entry t key in
  match Queue.peek_opt e.waiters with
  | None -> ()
  | Some w ->
    if compatible e ~txn:w.w_owner.txn ~mode:w.w_mode then begin
      ignore (Queue.pop e.waiters);
      (match try_acquire t key ~owner:w.w_owner ~mode:w.w_mode with
       | `Granted -> w.notify ()
       | `Conflict _ -> assert false);
      if w.w_mode = Shared then promote t key
    end

(* Queue until the lock becomes available; [notify] runs when granted. *)
let acquire_or_wait t key ~owner ~mode ~notify =
  match try_acquire t key ~owner ~mode with
  | `Granted -> `Granted
  | `Conflict os ->
    Queue.push { w_owner = owner; w_mode = mode; notify } (entry t key).waiters;
    `Waiting os

(* Release all of [txn]'s holds and queued waits on [key]. *)
let release t key ~txn =
  let e = entry t key in
  e.holders <- List.filter (fun (o, _) -> o.txn <> txn) e.holders;
  let keep = Queue.create () in
  Queue.iter (fun w -> if w.w_owner.txn <> txn then Queue.push w keep) e.waiters;
  Queue.clear e.waiters;
  Queue.transfer keep e.waiters;
  promote t key

(* Forcibly strip a (wounded) transaction's holds on [key] without
   notifying it — the protocol layer is responsible for aborting it. *)
let force_release = release

let held_by t key ~txn = List.exists (fun (o, _) -> o.txn = txn) (entry t key).holders
