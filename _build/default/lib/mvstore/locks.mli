(** Per-server lock table for the d2PL baselines: shared/exclusive
    modes, re-entrant acquisition, sole-holder upgrade, FIFO waiters
    granted by callback. *)

open Kernel

type mode = Shared | Exclusive
type owner = { txn : int; ts : Ts.t }
type t

val create : unit -> t

val holders : t -> Types.key -> (owner * mode) list

(** Grant immediately or report the conflicting owners (no-wait). *)
val try_acquire :
  t -> Types.key -> owner:owner -> mode:mode -> [ `Granted | `Conflict of owner list ]

(** Grant immediately, or queue and call [notify] when granted
    (wound-wait "wait" arm); returns the current conflicting owners
    when queued. *)
val acquire_or_wait :
  t -> Types.key -> owner:owner -> mode:mode -> notify:(unit -> unit) ->
  [ `Granted | `Waiting of owner list ]

(** Drop [txn]'s holds and queued waits on [key]; promotes waiters. *)
val release : t -> Types.key -> txn:int -> unit

(** Same as [release]; used when wounding a victim. *)
val force_release : t -> Types.key -> txn:int -> unit

val held_by : t -> Types.key -> txn:int -> bool
