lib/cluster/latency.mli: Kernel Sim Topology
