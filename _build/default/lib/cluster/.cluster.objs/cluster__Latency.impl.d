lib/cluster/latency.ml: Array Kernel Sim Topology
