lib/cluster/net.mli: Kernel Latency Sim Topology Types
