lib/cluster/net.ml: Array Float Kernel Latency Lazy List Printf Queue Sim Topology Types
