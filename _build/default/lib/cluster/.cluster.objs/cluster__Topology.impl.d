lib/cluster/topology.ml: Hashtbl Int Kernel List
