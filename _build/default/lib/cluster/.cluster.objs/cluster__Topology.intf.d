lib/cluster/topology.mli: Kernel
