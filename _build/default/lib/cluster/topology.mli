(** Cluster shape and key placement. Servers are nodes [0, n_servers),
    clients are [n_servers, n_servers + n_clients), and replicated
    protocols put each server's replica nodes at the top of the id
    space. *)

type t = { n_servers : int; n_clients : int; replicas_per_server : int }

val make : ?replicas_per_server:int -> n_servers:int -> n_clients:int -> unit -> t
val n_nodes : t -> int
val n_replicas : t -> int
val is_server : t -> Kernel.Types.node_id -> bool
val is_client : t -> Kernel.Types.node_id -> bool
val is_replica : t -> Kernel.Types.node_id -> bool
val servers : t -> Kernel.Types.node_id list
val clients : t -> Kernel.Types.node_id list
val replicas : t -> Kernel.Types.node_id list

(** The replica nodes backing a server. *)
val replicas_of : t -> Kernel.Types.node_id -> Kernel.Types.node_id list

(** The server owning a replica node. *)
val leader_of_replica : t -> Kernel.Types.node_id -> Kernel.Types.node_id

(** Dense 0-based index of a client node among clients. *)
val client_index : t -> Kernel.Types.node_id -> int

val server_of_key : t -> Kernel.Types.key -> Kernel.Types.node_id

(** Partition operations by participant server (ascending server id),
    preserving per-server operation order. *)
val ops_by_server :
  t -> Kernel.Types.op list -> (Kernel.Types.node_id * Kernel.Types.op list) list
