(* The message-passing runtime connecting protocol actors.

   Each node has a single logical CPU: incoming messages queue at the
   node and are serviced one at a time; servicing a message costs
   [cost msg] seconds of CPU before the handler runs. This M/G/1-style
   model is what turns "protocol X sends more messages per transaction"
   into the queueing delay and throughput ceiling the paper's
   latency-vs-throughput figures show.

   Handlers run at service completion. Sends made from within a handler
   are charged no extra CPU (send cost can be folded into the message's
   own cost model). *)

open Kernel

type 'msg ctx = {
  self : Types.node_id;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  topo : Topology.t;
  clock : Sim.Clock.t;
  send : dst:Types.node_id -> 'msg -> unit;
  timer : delay:float -> (unit -> unit) -> unit;
}

(* Local physical-clock reading in integer nanoseconds (the timestamp
   unit used throughout the protocols). *)
let local_ns ctx = Sim.Clock.read_ns ctx.clock ~now:(Sim.Engine.now ctx.engine)

let now ctx = Sim.Engine.now ctx.engine

type 'msg node = {
  ctx : 'msg ctx;
  mutable handler : src:Types.node_id -> 'msg -> unit;
  mutable cost : 'msg -> float;
  inbox : (Types.node_id * 'msg) Queue.t;
  mutable busy : bool;
}

type 'msg t = {
  net_engine : Sim.Engine.t;
  net_rng : Sim.Rng.t;
  net_topo : Topology.t;
  latency : Latency.t;
  nodes : 'msg node array;
  mutable messages_sent : int;
  mutable busy_time : float array;  (* per-node CPU seconds consumed *)
}

let rec service t node =
  if (not node.busy) && not (Queue.is_empty node.inbox) then begin
    node.busy <- true;
    let src, msg = Queue.pop node.inbox in
    let c = node.cost msg in
    t.busy_time.(node.ctx.self) <- t.busy_time.(node.ctx.self) +. c;
    Sim.Engine.schedule t.net_engine ~delay:c (fun () ->
        if Sim.Trace.active () then
          Sim.Trace.emit ~time:(Sim.Engine.now t.net_engine) ~cat:"handle"
            (Printf.sprintf "node %d handles message from %d" node.ctx.self src);
        node.handler ~src msg;
        node.busy <- false;
        service t node)
  end

let send t ~src ~dst msg =
  t.messages_sent <- t.messages_sent + 1;
  let delay = Latency.sample t.net_rng t.latency ~src ~dst in
  if Sim.Trace.active () then
    Sim.Trace.emit ~time:(Sim.Engine.now t.net_engine) ~cat:"send"
      (Printf.sprintf "%d -> %d (arrives +%.0fus)" src dst (delay *. 1e6));
  let node = t.nodes.(dst) in
  Sim.Engine.schedule t.net_engine ~delay (fun () ->
      Queue.push (src, msg) node.inbox;
      service t node)

let create engine rng topo ~latency ~clock_of =
  let n = Topology.n_nodes topo in
  let rec t =
    lazy
      {
        net_engine = engine;
        net_rng = Sim.Rng.split rng;
        net_topo = topo;
        latency;
        nodes =
          Array.init n (fun id ->
              let ctx =
                {
                  self = id;
                  engine;
                  rng = Sim.Rng.split rng;
                  topo;
                  clock = clock_of id;
                  send = (fun ~dst msg -> send (Lazy.force t) ~src:id ~dst msg);
                  timer = (fun ~delay f -> Sim.Engine.schedule engine ~delay f);
                }
              in
              {
                ctx;
                handler = (fun ~src:_ _ -> failwith "Net: handler not set");
                cost = (fun _ -> 0.0);
                inbox = Queue.create ();
                busy = false;
              });
        messages_sent = 0;
        busy_time = Array.make n 0.0;
      }
  in
  Lazy.force t

let ctx t id = t.nodes.(id).ctx

let set_handler t id ~cost ~handler =
  t.nodes.(id).cost <- cost;
  t.nodes.(id).handler <- handler

let messages_sent t = t.messages_sent

let busy_time t id = t.busy_time.(id)

let max_server_utilization t ~duration =
  if duration <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc s -> Float.max acc (t.busy_time.(s) /. duration))
      0.0
      (Topology.servers t.net_topo)
