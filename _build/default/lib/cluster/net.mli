(** Message-passing runtime over the simulator. Each node services its
    inbox with a single CPU: a message costs [cost msg] seconds before
    its handler runs, which models server saturation and queueing. *)

open Kernel

(** Per-node capabilities handed to protocol implementations. *)
type 'msg ctx = {
  self : Types.node_id;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  topo : Topology.t;
  clock : Sim.Clock.t;
  send : dst:Types.node_id -> 'msg -> unit;
  timer : delay:float -> (unit -> unit) -> unit;
}

(** Node's local physical clock in integer nanoseconds (timestamp unit). *)
val local_ns : 'msg ctx -> int

(** True simulated time in seconds (for measurement, not protocol logic). *)
val now : 'msg ctx -> float

type 'msg t

(** [create engine rng topo ~latency ~clock_of] builds the runtime;
    [clock_of id] supplies each node's (possibly skewed) clock. *)
val create :
  Sim.Engine.t -> Sim.Rng.t -> Topology.t ->
  latency:Latency.t -> clock_of:(Types.node_id -> Sim.Clock.t) -> 'msg t

val ctx : 'msg t -> Types.node_id -> 'msg ctx

val set_handler :
  'msg t -> Types.node_id ->
  cost:('msg -> float) -> handler:(src:Types.node_id -> 'msg -> unit) -> unit

val send : 'msg t -> src:Types.node_id -> dst:Types.node_id -> 'msg -> unit

val messages_sent : 'msg t -> int

(** CPU seconds consumed by a node so far. *)
val busy_time : 'msg t -> Types.node_id -> float

(** Highest per-server CPU utilization over [duration] seconds. *)
val max_server_utilization : 'msg t -> duration:float -> float
