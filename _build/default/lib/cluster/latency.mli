(** One-way message delay models (seconds). Links are not FIFO: jitter
    is drawn per message, so reordering happens naturally. *)

type t

val sample : Sim.Rng.t -> t -> src:Kernel.Types.node_id -> dst:Kernel.Types.node_id -> float

(** Same base one-way delay for every pair, plus exponential jitter. *)
val uniform : one_way:float -> jitter_mean:float -> t

(** Two delay classes: [remote src dst] pairs see [wide], others
    [local] (geo-replication topologies). *)
val classed :
  local:float -> wide:float ->
  remote:(Kernel.Types.node_id -> Kernel.Types.node_id -> bool) ->
  jitter_mean:float -> t

(** Per-pair symmetric base delays drawn uniformly in
    [min_one_way, max_one_way] once at construction. *)
val asymmetric :
  Sim.Rng.t -> Topology.t ->
  min_one_way:float -> max_one_way:float -> jitter_mean:float -> t
