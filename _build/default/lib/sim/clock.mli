(** Per-node skewed physical clocks (constant offset + linear drift). *)

type t = { offset : float; drift : float }

val perfect : t
val make : offset:float -> drift:float -> t

(** Random skew: offset in [-max_offset, +max_offset] seconds, drift in
    [-max_drift, +max_drift] seconds per second. *)
val random : Rng.t -> max_offset:float -> max_drift:float -> t

(** Local reading (seconds) given the true simulated time. *)
val read : t -> now:float -> float

(** Local reading as integer nanoseconds (timestamp unit). *)
val read_ns : t -> now:float -> int
