(** Deterministic, splittable pseudo-randomness for simulations. *)

type t

val create : int -> t

(** Derive an independent child stream; draws on the child do not affect
    the parent and vice versa. *)
val split : t -> t

val int : t -> int -> int
val float : t -> float -> float
val bool : t -> bool

(** Bernoulli draw with probability [p]. *)
val flip : t -> float -> bool

(** Uniform integer in [lo, hi], inclusive. *)
val int_range : t -> int -> int -> int

(** Exponential variate with the given mean. *)
val exponential : t -> mean:float -> float

(** Normal variate clamped to be non-negative. *)
val gaussian : t -> mean:float -> stddev:float -> float

(** Zipfian sampler over [0, n). *)
type zipf

val zipf_create : n:int -> theta:float -> zipf
val zipf_draw : t -> zipf -> int

val shuffle : t -> 'a array -> unit
val choose : t -> 'a array -> 'a
