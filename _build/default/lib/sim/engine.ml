(* The discrete-event simulation core: a virtual clock and an ordered
   queue of pending events (thunks). Time is in seconds (float). Events
   scheduled for the same instant run in scheduling order, so a run is a
   pure function of the seed and the initial events. *)

type t = {
  mutable now : float;
  events : (unit -> unit) Heap.t;
  mutable stopped : bool;
  mutable executed : int;
}

let create () = { now = 0.0; events = Heap.create (); stopped = false; executed = 0 }

let now t = t.now

let executed_events t = t.executed

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Heap.push t.events (t.now +. delay) f

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.events time f

let stop t = t.stopped <- true

(* Run until the queue drains, [until] passes, or [stop] is called. The
   event whose time exceeds [until] is left in the queue. *)
let run ?until t =
  let horizon = match until with None -> Float.infinity | Some u -> u in
  let rec loop () =
    if t.stopped then ()
    else
      match Heap.peek_prio t.events with
      | None -> ()
      | Some time when time > horizon -> t.now <- horizon
      | Some _ ->
        (match Heap.pop t.events with
         | None -> ()
         | Some (time, f) ->
           t.now <- time;
           t.executed <- t.executed + 1;
           f ();
           loop ())
  in
  loop ()
