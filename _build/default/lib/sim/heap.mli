(** Array-based binary min-heap with deterministic FIFO order among
    equal priorities. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> 'a option
val peek_prio : 'a t -> float option

(** Remove and return the minimum element with its priority. *)
val pop : 'a t -> (float * 'a) option
