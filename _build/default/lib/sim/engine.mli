(** Discrete-event simulation engine: virtual clock plus event queue.
    Deterministic: equal-time events run in scheduling order. *)

type t

val create : unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** Number of events executed so far. *)
val executed_events : t -> int

(** Schedule [f] to run [delay] seconds from now. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** Schedule [f] at an absolute virtual time (must not be in the past). *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** Make [run] return after the current event finishes. *)
val stop : t -> unit

(** Process events until the queue drains, the optional horizon [until]
    is reached, or [stop] is called. *)
val run : ?until:float -> t -> unit
