(* Deterministic pseudo-randomness for the simulator.

   Every consumer gets its own stream [split] from a parent, so adding a
   new consumer (or reordering draws inside one consumer) does not
   perturb the draws seen by others — a property plain shared
   [Random.State] does not have and which keeps experiments reproducible
   as the code evolves. *)

type t = { state : Random.State.t }

let create seed = { state = Random.State.make [| seed; 0x9e3779b9 |] }

let split t =
  (* Derive a child seed from the parent stream. *)
  let s1 = Random.State.bits t.state in
  let s2 = Random.State.bits t.state in
  { state = Random.State.make [| s1; s2; 0x85ebca6b |] }

let int t bound = Random.State.int t.state bound

let float t bound = Random.State.float t.state bound

let bool t = Random.State.bool t.state

(* Bernoulli draw with probability [p]. *)
let flip t p = Random.State.float t.state 1.0 < p

(* Uniform integer in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range";
  lo + Random.State.int t.state (hi - lo + 1)

(* Exponential with mean [mean] (inter-arrival times of a Poisson
   process). *)
let exponential t ~mean =
  let u = 1.0 -. Random.State.float t.state 1.0 in
  -. mean *. log u

(* Truncated normal via Box-Muller, clamped to [0, +inf) which is all we
   need for sizes and latencies. *)
let gaussian t ~mean ~stddev =
  let u1 = 1.0 -. Random.State.float t.state 1.0 in
  let u2 = Random.State.float t.state 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  Float.max 0.0 (mean +. (stddev *. z))

(* Zipfian sampler over [0, n) with parameter [theta], using the
   classical rejection-free method of Gray et al. (as in YCSB): constant
   time per draw after O(n)-free setup (the zeta value is approximated
   by the closed form for large n, which is accurate enough for key
   popularity distributions). *)
type zipf = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

let zeta ~n ~theta =
  (* Exact for small n; Euler-Maclaurin approximation for large n keeps
     setup O(1) even with millions of keys. *)
  if n <= 10_000 then (
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !acc)
  else
    let nf = float_of_int n in
    let z10k =
      let acc = ref 0.0 in
      for i = 1 to 10_000 do
        acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
      done;
      !acc
    in
    (* integral tail from 10k to n of x^-theta dx *)
    z10k
    +. ((Float.pow nf (1.0 -. theta) -. Float.pow 10_000.0 (1.0 -. theta))
        /. (1.0 -. theta))

let zipf_create ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf_create";
  let zetan = zeta ~n ~theta in
  let zeta2 = zeta ~n:2 ~theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta }

let zipf_draw t z =
  let u = Random.State.float t.state 1.0 in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 z.theta then 1
  else
    let v =
      float_of_int z.n
      *. Float.pow ((z.eta *. u) -. z.eta +. 1.0) z.alpha
    in
    let i = int_of_float v in
    if i >= z.n then z.n - 1 else if i < 0 then 0 else i

(* Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Pick one element of a non-empty array uniformly. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose";
  arr.(Random.State.int t.state (Array.length arr))
