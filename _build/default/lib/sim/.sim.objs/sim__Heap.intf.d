lib/sim/heap.mli:
