lib/sim/rng.ml: Array Float Random
