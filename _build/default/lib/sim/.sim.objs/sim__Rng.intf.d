lib/sim/rng.mli:
