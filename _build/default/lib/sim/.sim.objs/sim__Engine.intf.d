lib/sim/engine.mli:
