(* TPC-C workload with the paper's setup (Fig 4): transaction mix
   New-Order 44%, Payment 44%, Delivery 4%, Order-Status 4%,
   Stock-Level 4%; 10 districts per warehouse; 8 warehouses per server.
   Payment and Order-Status are multi-shot, as in the paper's modified
   benchmark (§5.1); the rest are one-shot.

   Rows live in the integer key space, encoded so that a warehouse's
   rows are placed on its home server (key mod n_servers = home):

     key = ((table << 34) + (wh << 20) + id) * n_servers + home

   Order ids are drawn from a shared per-(warehouse, district) counter
   that stands in for the database's D_NEXT_O_ID sequence: Order-Status
   and Stock-Level read recently inserted orders. The district and
   warehouse rows are the hot spots — Payment and New-Order both update
   them, giving the medium-to-high contention regime of Fig 5. *)

open Kernel

type t = {
  n_servers : int;
  n_warehouses : int;
  districts_per_wh : int;
  items : int;
  customers_per_district : int;
  next_oid : (int * int, int) Hashtbl.t;  (* (wh, district) -> next order id *)
}

let create ?(warehouses_per_server = 8) ~n_servers () =
  {
    n_servers;
    n_warehouses = warehouses_per_server * n_servers;
    districts_per_wh = 10;
    items = 100_000;
    customers_per_district = 3_000;
    next_oid = Hashtbl.create 256;
  }

(* table tags *)
let t_warehouse = 0
let t_district = 1
let t_customer = 2
let t_stock = 3
let t_item = 4
let t_order = 5
let t_order_line = 6
let t_new_order = 7

let key t ~table ~wh ~id =
  let home = wh mod t.n_servers in
  ((((table lsl 34) + (wh lsl 20) + id) * t.n_servers) + home)

let warehouse_key t wh = key t ~table:t_warehouse ~wh ~id:0
let district_key t wh d = key t ~table:t_district ~wh ~id:d
let customer_key t wh d c = key t ~table:t_customer ~wh ~id:((d * 4096) + c)
let stock_key t wh i = key t ~table:t_stock ~wh ~id:i

(* the item catalog is partitioned round-robin (read-only data) *)
let item_key t i = key t ~table:t_item ~wh:(i mod t.n_warehouses) ~id:i / 1

let order_key t wh d oid = key t ~table:t_order ~wh ~id:((d lsl 14) + (oid land 0x3fff))

let order_line_key t wh d oid line =
  key t ~table:t_order_line ~wh ~id:((d lsl 18) + ((oid land 0x3fff) lsl 4) + line)

let new_order_key t wh d oid =
  key t ~table:t_new_order ~wh ~id:((d lsl 14) + (oid land 0x3fff))

let take_oid t wh d =
  let oid = Option.value ~default:1 (Hashtbl.find_opt t.next_oid (wh, d)) in
  Hashtbl.replace t.next_oid (wh, d) (oid + 1);
  oid

let latest_oid t wh d =
  Option.value ~default:1 (Hashtbl.find_opt t.next_oid (wh, d)) - 1

let wv () = Micro.fresh_value ()

(* --- the five transaction profiles -------------------------------- *)

let new_order t rng ~client ~wh =
  let d = Sim.Rng.int_range rng 0 (t.districts_per_wh - 1) in
  let c = Sim.Rng.int_range rng 0 (t.customers_per_district - 1) in
  let n_items = Sim.Rng.int_range rng 5 15 in
  let oid = take_oid t wh d in
  let line_ops =
    List.concat
      (List.init n_items (fun line ->
           (* 1% of the items come from a remote warehouse *)
           let supply_wh =
             if Sim.Rng.flip rng 0.01 && t.n_warehouses > 1 then
               Sim.Rng.int_range rng 0 (t.n_warehouses - 1)
             else wh
           in
           let item = Sim.Rng.int_range rng 0 (t.items - 1) in
           [
             Types.Read (item_key t item);
             Types.Read (stock_key t supply_wh item);
             Types.Write (stock_key t supply_wh item, wv ());
             Types.Write (order_line_key t wh d oid line, wv ());
           ]))
  in
  let ops =
    [
      Types.Read (warehouse_key t wh);
      Types.Read (district_key t wh d);
      Types.Write (district_key t wh d, wv ());  (* D_NEXT_O_ID *)
      Types.Read (customer_key t wh d c);
      Types.Write (order_key t wh d oid, wv ());
      Types.Write (new_order_key t wh d oid, wv ());
    ]
    @ line_ops
  in
  Txn.make ~label:"new_order" ~bytes:512 ~client [ ops ]

(* Multi-shot: warehouse/district update first, then the customer
   (found by name in real TPC-C, hence the extra round). *)
let payment t rng ~client ~wh =
  let d = Sim.Rng.int_range rng 0 (t.districts_per_wh - 1) in
  (* 15% of payments are for a customer of a remote warehouse *)
  let c_wh =
    if Sim.Rng.flip rng 0.15 && t.n_warehouses > 1 then
      Sim.Rng.int_range rng 0 (t.n_warehouses - 1)
    else wh
  in
  let c = Sim.Rng.int_range rng 0 (t.customers_per_district - 1) in
  let shot1 =
    [
      Types.Read (warehouse_key t wh);
      Types.Write (warehouse_key t wh, wv ());  (* W_YTD *)
      Types.Read (district_key t wh d);
      Types.Write (district_key t wh d, wv ());  (* D_YTD *)
    ]
  in
  let shot2 =
    [
      Types.Read (customer_key t c_wh d c);
      Types.Write (customer_key t c_wh d c, wv ());  (* C_BALANCE *)
    ]
  in
  Txn.make ~label:"payment" ~bytes:256 ~client [ shot1; shot2 ]

(* Multi-shot read-only: customer lookup, then their latest order. *)
let order_status t rng ~client ~wh =
  let d = Sim.Rng.int_range rng 0 (t.districts_per_wh - 1) in
  let c = Sim.Rng.int_range rng 0 (t.customers_per_district - 1) in
  let oid = max 1 (latest_oid t wh d) in
  let shot1 = [ Types.Read (customer_key t wh d c) ] in
  let shot2 =
    Types.Read (order_key t wh d oid)
    :: List.init 8 (fun line -> Types.Read (order_line_key t wh d oid line))
  in
  Txn.make ~label:"order_status" ~bytes:128 ~client [ shot1; shot2 ]

let delivery t rng ~client ~wh =
  let ops =
    List.concat
      (List.init t.districts_per_wh (fun d ->
           let oid = max 1 (latest_oid t wh d) in
           let c = Sim.Rng.int_range rng 0 (t.customers_per_district - 1) in
           [
             Types.Read (new_order_key t wh d oid);
             Types.Write (order_key t wh d oid, wv ());      (* carrier id *)
             Types.Write (customer_key t wh d c, wv ());     (* balance *)
           ]))
  in
  Txn.make ~label:"delivery" ~bytes:256 ~client [ ops ]

(* Read-only: district cursor plus recently sold items' stock. *)
let stock_level t rng ~client ~wh =
  let d = Sim.Rng.int_range rng 0 (t.districts_per_wh - 1) in
  let stock_reads =
    List.init 20 (fun _ ->
        Types.Read (stock_key t wh (Sim.Rng.int_range rng 0 (t.items - 1))))
  in
  Txn.make ~label:"stock_level" ~bytes:128 ~client
    [ Types.Read (district_key t wh d) :: stock_reads ]

let make ?(warehouses_per_server = 8) ~n_servers () : Harness.Workload_sig.t =
  let t = create ~warehouses_per_server ~n_servers () in
  let gen rng ~client =
    let wh = Sim.Rng.int_range rng 0 (t.n_warehouses - 1) in
    let dice = Sim.Rng.float rng 1.0 in
    if dice < 0.44 then new_order t rng ~client ~wh
    else if dice < 0.88 then payment t rng ~client ~wh
    else if dice < 0.92 then delivery t rng ~client ~wh
    else if dice < 0.96 then order_status t rng ~client ~wh
    else stock_level t rng ~client ~wh
  in
  { Harness.Workload_sig.name = "tpcc"; gen }
