lib/workload/google_f1.mli: Harness Micro
