lib/workload/facebook_tao.ml: Float Harness Kernel List Micro Sim Txn Types
