lib/workload/tpcc.mli: Harness Kernel
