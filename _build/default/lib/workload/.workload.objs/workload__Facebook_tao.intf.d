lib/workload/facebook_tao.mli: Harness Micro
