lib/workload/google_f1.ml: Micro Printf
