lib/workload/micro.ml: Harness Kernel List Sim Txn Types
