lib/workload/micro.mli: Harness
