lib/workload/tpcc.ml: Harness Hashtbl Kernel List Micro Option Sim Txn Types
