(** Facebook-TAO workload (paper Fig 4): write fraction 0.2%,
    association-to-object ratio 9.5:1, power-law fan-out reads touching
    1-1000 keys, single-key writes. *)

val params : Micro.params
val make : unit -> Harness.Workload_sig.t
