(* Google-F1 workload (paper Fig 4): read-dominated, one-shot, 1-10
   keys per transaction, ~1.6 KB values, Zipf 0.8 over 1 M keys,
   write fraction 0.3% (varied up to 30% by the Google-WF experiment). *)

let params ?(write_fraction = 0.003) ?(n_keys = 1_000_000) () : Micro.params =
  {
    Micro.n_keys;
    zipf_theta = 0.8;
    write_fraction;
    ro_keys_min = 1;
    ro_keys_max = 10;
    rw_keys_min = 1;
    rw_keys_max = 10;
    write_ops_fraction = 0.5;
    value_bytes_mean = 1638.0;
    value_bytes_stddev = 119.0;
    label = "google-f1";
  }

let make ?write_fraction ?n_keys () =
  Micro.make (params ?write_fraction ?n_keys ())

(* Google-WF: the Fig 7a sweep reuses F1 with a raised write fraction. *)
let make_wf ~write_fraction ?n_keys () =
  Micro.make
    { (params ~write_fraction ?n_keys ()) with
      Micro.label = Printf.sprintf "google-wf-%.1f%%" (write_fraction *. 100.0)
    }
