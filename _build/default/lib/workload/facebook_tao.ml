(* Facebook-TAO workload (paper Fig 4): overwhelmingly read-only
   (write fraction 0.2%), association-to-object read ratio 9.5:1,
   read-only transactions touching 1-1000 keys (power-law sized
   association lists), single-key writes, 1-4 KB values. *)

open Kernel

let params : Micro.params =
  {
    Micro.n_keys = 1_000_000;
    zipf_theta = 0.8;
    write_fraction = 0.002;
    ro_keys_min = 1;
    ro_keys_max = 1000;
    rw_keys_min = 1;
    rw_keys_max = 1;
    write_ops_fraction = 1.0;
    value_bytes_mean = 2048.0;
    value_bytes_stddev = 800.0;
    label = "facebook-tao";
  }

(* Association-list sizes follow a power law: most reads touch a
   handful of keys, a heavy tail touches hundreds (the "much larger
   read transactions" §5.3 mentions). *)
let assoc_size rng =
  let u = Sim.Rng.float rng 1.0 in
  let size = int_of_float (Float.pow 1000.0 (u *. u *. u)) in
  max 1 (min 1000 size)

let make () : Harness.Workload_sig.t =
  let zipf = Sim.Rng.zipf_create ~n:params.Micro.n_keys ~theta:params.Micro.zipf_theta in
  let gen rng ~client =
    let bytes =
      int_of_float
        (Sim.Rng.gaussian rng ~mean:params.Micro.value_bytes_mean
           ~stddev:params.Micro.value_bytes_stddev)
    in
    if Sim.Rng.flip rng params.Micro.write_fraction then
      (* single-key object/association write *)
      let k = Sim.Rng.zipf_draw rng zipf in
      Txn.make ~label:"tao-w" ~bytes ~client
        [ [ Types.Write (k, Micro.fresh_value ()) ] ]
    else begin
      (* object fetch plus its association list: 9.5:1 assoc-to-obj *)
      let n = assoc_size rng in
      let obj = Sim.Rng.zipf_draw rng zipf in
      let assocs =
        List.init n (fun i -> (obj + ((i + 1) * 7919)) mod params.Micro.n_keys)
      in
      Txn.make ~label:"tao-ro" ~bytes ~client
        [ List.map (fun k -> Types.Read k) (obj :: assocs) ]
    end
  in
  { Harness.Workload_sig.name = "facebook-tao"; gen }
