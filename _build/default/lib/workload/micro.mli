(** Parameterized micro-workload over a Zipfian key space: a tunable
    mix of read-only and read-write (one-shot) transactions. The
    substrate behind the Google-F1 / write-fraction workloads and the
    Fig 8 properties probes. *)

type params = {
  n_keys : int;
  zipf_theta : float;
  write_fraction : float;  (** fraction of transactions that write *)
  ro_keys_min : int;
  ro_keys_max : int;
  rw_keys_min : int;
  rw_keys_max : int;
  write_ops_fraction : float;  (** write ops within a read-write txn *)
  value_bytes_mean : float;
  value_bytes_stddev : float;
  label : string;
}

val make : params -> Harness.Workload_sig.t

(** Globally unique write payload (lets the checker identify versions
    by value in examples). *)
val fresh_value : unit -> int
