(** TPC-C with the paper's setup (Fig 4): mix New-Order 44% /
    Payment 44% / Delivery 4% / Order-Status 4% / Stock-Level 4%;
    10 districts per warehouse, 8 warehouses per server by default;
    Payment and Order-Status are multi-shot (§5.1). Rows are placed on
    their warehouse's home server. *)

type t

val create : ?warehouses_per_server:int -> n_servers:int -> unit -> t

(** Row-key constructors (exposed for tests and tooling). *)
val warehouse_key : t -> int -> Kernel.Types.key
val district_key : t -> int -> int -> Kernel.Types.key
val customer_key : t -> int -> int -> int -> Kernel.Types.key
val stock_key : t -> int -> int -> Kernel.Types.key
val item_key : t -> int -> Kernel.Types.key

val make :
  ?warehouses_per_server:int -> n_servers:int -> unit -> Harness.Workload_sig.t
