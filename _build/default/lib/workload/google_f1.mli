(** Google-F1 workload (paper Fig 4): one-shot, read-dominated
    (write fraction 0.3%), 1-10 keys per transaction, ~1.6 KB values,
    Zipf 0.8 over 1M keys. *)

val params : ?write_fraction:float -> ?n_keys:int -> unit -> Micro.params
val make : ?write_fraction:float -> ?n_keys:int -> unit -> Harness.Workload_sig.t

(** Google-WF (Fig 7a): F1 with a raised write fraction. *)
val make_wf : write_fraction:float -> ?n_keys:int -> unit -> Harness.Workload_sig.t
