(** Transaction descriptors: a sequence of shots, each a batch of
    operations issued in one round. *)

type shot = Types.op list

(** Interactive continuation: fed the reads observed so far, yields the
    next shot, the final shot, or ends the transaction. Must be a pure
    function of the reads (retries re-run it). *)
type step = [ `Shot of shot | `Last of shot | `Done ]

type continuation = (Types.key * Types.value) list -> step

type t = {
  id : int;
  client : Types.node_id;
  shots : shot list;
  dynamic : continuation option;
  read_only : bool;
  label : string;
  bytes : int;
}

(** Reset the global id counter (call between independent simulations so
    runs are reproducible). *)
val reset_ids : unit -> unit

(** [make ~client shots] allocates a fresh id; [dynamic] appends an
    interactive phase after the static shots (supported by the NCC
    coordinators; the baseline protocols reject interactive
    transactions). *)
val make :
  ?label:string -> ?bytes:int -> ?dynamic:continuation ->
  client:Types.node_id -> shot list -> t

val ops : t -> Types.op list
val keys : t -> Types.key list
val read_keys : t -> Types.key list
val write_keys : t -> Types.key list
val n_shots : t -> int
val pp : t Fmt.t
