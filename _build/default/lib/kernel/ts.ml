(* Timestamps combine a physical time (integer nanoseconds of the issuing
   node's local clock) with the client identifier, making them unique and
   totally ordered (§4.1 of the paper: ties on the physical component are
   broken by client id). *)

type t = { time : int; cid : int }

let zero = { time = 0; cid = 0 }
let infinity = { time = max_int; cid = max_int }

let make ~time ~cid = { time; cid }

let compare a b =
  let c = Int.compare a.time b.time in
  if c <> 0 then c else Int.compare a.cid b.cid

let equal a b = compare a b = 0
let max a b = if compare a b >= 0 then a else b
let min a b = if compare a b <= 0 then a else b

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

(* The smallest timestamp strictly greater than [t] with the same client
   id: used by the server-side refinement rule t_w = max(t, curr.t_r + 1)
   (Alg 4.2 line 10), where "+ 1" bumps the physical component. *)
let succ t = { t with time = t.time + 1 }

let pp ppf t = Fmt.pf ppf "%d.%d" t.time t.cid
let to_string t = Fmt.str "%a" pp t
