(** Core vocabulary: keys, values, node ids, operations. *)

type key = int
type value = int

(** Nodes are numbered 0..n-1: servers first, then clients (see
    [Cluster.Topology]). *)
type node_id = int

type op =
  | Read of key
  | Write of key * value

val op_key : op -> key
val is_write : op -> bool
val pp_op : op Fmt.t
