lib/kernel/txn.ml: Fmt List Option Types
