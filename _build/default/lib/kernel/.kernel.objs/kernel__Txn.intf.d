lib/kernel/txn.mli: Fmt Types
