lib/kernel/outcome.mli: Fmt Ts Txn Types
