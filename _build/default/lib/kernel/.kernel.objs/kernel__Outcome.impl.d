lib/kernel/outcome.ml: Fmt Ts Txn Types
