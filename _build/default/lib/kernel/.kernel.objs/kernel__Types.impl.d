lib/kernel/types.ml: Fmt
