lib/kernel/ts.ml: Fmt Int
