lib/kernel/types.mli: Fmt
