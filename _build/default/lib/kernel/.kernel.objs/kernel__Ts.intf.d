lib/kernel/ts.mli: Fmt
