(** Unique, totally ordered transaction timestamps: a physical-clock
    component (integer nanoseconds) plus the issuing client's id as a
    tie-breaker (paper §4.1). *)

type t = { time : int; cid : int }

val zero : t
val infinity : t

val make : time:int -> cid:int -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t

(** [succ t] is the smallest timestamp strictly greater than [t] that
    keeps the same client id (bumps the physical component by 1 ns). *)
val succ : t -> t

val pp : t Fmt.t
val to_string : t -> string
