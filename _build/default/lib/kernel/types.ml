(* Core vocabulary shared by every layer of the system.

   Keys are integers; the key space is partitioned across servers by the
   placement function in [Cluster.Topology]. Values are integers — the
   checker only needs to distinguish versions, and payload size (which
   matters for the CPU/network cost model) is carried separately on each
   operation as [bytes]. *)

type key = int
type value = int

type node_id = int
(** Nodes are numbered 0 .. n-1; servers first, then clients (see
    [Cluster.Topology]). *)

type op =
  | Read of key
  | Write of key * value

let op_key = function Read k -> k | Write (k, _) -> k
let is_write = function Write _ -> true | Read _ -> false

let pp_op ppf = function
  | Read k -> Fmt.pf ppf "R(%d)" k
  | Write (k, v) -> Fmt.pf ppf "W(%d=%d)" k v
