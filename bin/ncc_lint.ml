(* ncc_lint — the determinism linter (docs/determinism.md).

   Usage: ncc_lint [--json] [--werror] [PATH ...]

   Lints every .ml file under the given paths (default: lib bin bench
   test) against the seed-replay rule set R1-R6 and exits non-zero if
   any error-severity finding survives waivers. [--werror] also fails
   on warnings (unused waiver pragmas). *)

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

(* Directory walk in sorted order — the linter obeys its own contract:
   [Sys.readdir]'s order is unspecified, so we sort. *)
let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, roots = List.partition (fun a -> String.length a > 2 && String.sub a 0 2 = "--") args in
  let json = List.mem "--json" flags in
  let werror = List.mem "--werror" flags in
  (match List.filter (fun f -> f <> "--json" && f <> "--werror") flags with
   | [] -> ()
   | unknown ->
     Printf.eprintf "ncc_lint: unknown flag(s): %s\n"
       (String.concat " " unknown);
     exit 2);
  let roots = if roots = [] then default_roots else roots in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
   | [] -> ()
   | missing ->
     Printf.eprintf "ncc_lint: no such path(s): %s\n" (String.concat " " missing);
     exit 2);
  let files =
    List.rev (List.fold_left (fun acc root -> walk root acc) [] roots)
    |> List.sort String.compare
  in
  let findings = List.concat_map Lint.Engine.lint_file files in
  if json then Lint.Report.print_json Format.std_formatter findings
  else if findings <> [] then Lint.Report.print_human Format.std_formatter findings
  else
    Printf.printf "ncc_lint: %d files clean (rules %s)\n" (List.length files)
      (String.concat " " Lint.Rules.known_ids);
  let errors = Lint.Engine.errors findings in
  if errors <> [] || (werror && findings <> []) then exit 1
