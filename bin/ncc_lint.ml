(* ncc_lint — the determinism linter (docs/determinism.md,
   docs/performance.md).

   Usage: ncc_lint [--format human|json|sarif] [--werror]
                   [--rules R1,R7,...] [--cmt-root DIR] [--explain Rn]
                   [--waivers] [PATH ...]

   Lints every .ml file under the given paths (default: lib bin bench
   test) against the syntactic rule set R1-R6, and — when --cmt-root
   points at a build tree containing .cmt files — the typed rules
   R7-R10, the race plane R12-R15 and the allocation plane R16-R19 as
   well. Exits non-zero if any error-severity finding survives
   waivers; [--werror] also fails on warnings (unused waiver
   pragmas). *)

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let usage =
  "usage: ncc_lint [--format human|json|sarif] [--werror] [--rules R1,R7,...] \
   [--cmt-root DIR] [--explain Rn] [--waivers] [PATH ...]\n\n\
  \  --format FMT    finding output: human (default) file:line text, json\n\
  \                  (top-level \"version\" field tracks the schema), or\n\
  \                  sarif (SARIF 2.1.0, for code-scanning upload)\n\
  \  --json          alias for --format json\n\
  \  --werror        exit non-zero on warnings too\n\
  \  --rules IDS     run only the comma-separated rule ids (e.g. R7,R9);\n\
  \                  retired ids select their successor (R11 -> R12)\n\
  \  --cmt-root DIR  also run the typed rules R7-R10 and the race plane\n\
  \                  R12-R15 over the .cmt files found under DIR (a dune\n\
  \                  build tree, e.g. _build/default — or . when already\n\
  \                  running inside it)\n\
  \  --explain IDS   print each rule's summary, rationale and a minimal\n\
  \                  firing example, then exit (e.g. --explain R12)\n\
  \  --waivers       list every waiver pragma under PATHs (file:line,\n\
  \                  rules, reason) in deterministic order, then exit\n\
  \  --help          show this message\n\n\
   Default PATHs: lib bin bench test. Rules: docs/determinism.md.\n"

let die msg =
  Printf.eprintf "ncc_lint: %s\n%s" msg usage;
  exit 2

(* Directory walk in sorted order — the linter obeys its own contract:
   [Sys.readdir]'s order is unspecified, so we sort. *)
let rec walk ~ext ~skip_dot path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if
             name = "" || name = "_build" || name = ".git"
             || (skip_dot && name.[0] = '.')
           then acc
           else walk ~ext ~skip_dot (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ext then path :: acc
  else acc

type format = Human | Json | Sarif

type opts = {
  format : format;
  werror : bool;
  rules : string list option;
  cmt_root : string option;
  waivers : bool;
  roots : string list;
}

let parse_format = function
  | "human" -> Human
  | "json" -> Json
  | "sarif" -> Sarif
  | s -> die (Printf.sprintf "unknown format: %s (human, json or sarif)" s)

let parse_rules spec =
  let ids =
    List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
  in
  if ids = [] then die "--rules needs a comma-separated list of rule ids";
  (match
     List.filter (fun id -> not (List.mem id Lint.Rules.known_ids)) ids
   with
   | [] -> ()
   | bad ->
     die
       (Printf.sprintf "unknown rule id(s): %s (known: %s)"
          (String.concat ", " bad)
          (String.concat " " Lint.Rules.known_ids)));
  ids

(* --explain: the registry's documentation, on the terminal. *)
let explain ids =
  List.iteri
    (fun i id ->
      match Lint.Rules.find id with
      | None ->
        die
          (Printf.sprintf "unknown rule id: %s (known: %s)" id
             (String.concat " " Lint.Rules.known_ids))
      | Some r ->
        if i > 0 then print_newline ();
        let canon = Lint.Rules.canon_id id in
        if canon <> id then
          Printf.printf "%s is retired; it is an alias of %s:\n\n" id canon;
        Printf.printf "%s (%s) — %s\n\n%s\n\nfires on:\n" r.id
          (Lint.Rules.severity_to_string r.severity)
          r.summary r.rationale;
        List.iter
          (fun l -> Printf.printf "    %s\n" l)
          (String.split_on_char '\n' r.example);
        if r.allowed_files <> [] then
          Printf.printf "\nexempt files: %s\n"
            (String.concat ", " r.allowed_files))
    ids;
  exit 0

let split_eq a =
  match String.index_opt a '=' with
  | Some i ->
    Some (String.sub a 0 i, String.sub a (i + 1) (String.length a - i - 1))
  | None -> None

let parse_args args =
  let rec go o = function
    | [] -> o
    | "--help" :: _ ->
      print_string usage;
      exit 0
    | "--json" :: rest -> go { o with format = Json } rest
    | "--format" :: fmt :: rest -> go { o with format = parse_format fmt } rest
    | [ "--format" ] -> die "--format needs an argument (human, json or sarif)"
    | "--werror" :: rest -> go { o with werror = true } rest
    | "--waivers" :: rest -> go { o with waivers = true } rest
    | "--rules" :: spec :: rest ->
      go { o with rules = Some (parse_rules spec) } rest
    | [ "--rules" ] -> die "--rules needs an argument"
    | "--cmt-root" :: dir :: rest -> go { o with cmt_root = Some dir } rest
    | [ "--cmt-root" ] -> die "--cmt-root needs an argument"
    | "--explain" :: spec :: _ -> explain (parse_rules spec)
    | [ "--explain" ] -> die "--explain needs a rule id (e.g. --explain R12)"
    | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" -> (
      match split_eq a with
      | Some ("--rules", spec) -> go { o with rules = Some (parse_rules spec) } rest
      | Some ("--cmt-root", dir) -> go { o with cmt_root = Some dir } rest
      | Some ("--format", fmt) -> go { o with format = parse_format fmt } rest
      | Some ("--explain", spec) -> explain (parse_rules spec)
      | _ -> die (Printf.sprintf "unknown flag: %s" a))
    | path :: rest -> go { o with roots = o.roots @ [ path ] } rest
  in
  go
    { format = Human; werror = false; rules = None; cmt_root = None;
      waivers = false; roots = [] }
    args

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let roots = if o.roots = [] then default_roots else o.roots in
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
   | [] -> ()
   | missing -> die ("no such path(s): " ^ String.concat " " missing));
  let files =
    List.rev
      (List.fold_left
         (fun acc root -> walk ~ext:".ml" ~skip_dot:true root acc)
         [] roots)
    |> List.map Lint.Engine.normalize
    |> List.sort_uniq String.compare
  in
  if o.waivers then begin
    (* inventory mode: list every waiver pragma under the roots and
       exit; malformed pragmas are lint findings, not inventory rows *)
    let items =
      List.concat_map
        (fun file ->
          match In_channel.with_open_bin file In_channel.input_all with
          | source ->
            List.filter_map
              (function
                | Lint.Pragma.Pragma p -> Some (file, p)
                | Lint.Pragma.Malformed _ -> None)
              (Lint.Pragma.scan source)
          | exception Sys_error _ -> [])
        files
    in
    Lint.Report.print_waivers Format.std_formatter items;
    exit 0
  end;
  (* Typed rules first: their findings merge into each file's waiver
     pass below. The .objs directories holding .cmt files are
     dot-named, so this walk must not skip dot entries. *)
  let typed, used_sites =
    match o.cmt_root with
    | None -> ([], [])
    | Some dir ->
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        die ("--cmt-root: no such directory: " ^ dir);
      let cmts = List.rev (walk ~ext:".cmt" ~skip_dot:false dir []) in
      Lint.Typed_engine.lint_cmts ?only:o.rules cmts
  in
  let in_scope f = List.mem f.Lint.Engine.file files in
  let typed_in_scope, typed_stray = List.partition in_scope typed in
  (* Findings the cmt walk produced for files outside the requested
     roots are dropped; unreadable-cmt errors always surface. *)
  let typed_stray =
    List.filter (fun f -> f.Lint.Engine.rule = "cmt") typed_stray
  in
  let findings =
    List.concat_map
      (fun file ->
        let typed =
          List.filter (fun f -> f.Lint.Engine.file = file) typed_in_scope
        in
        let used_sites =
          List.filter_map
            (fun (f, line) -> if f = file then Some line else None)
            used_sites
        in
        Lint.Engine.lint_file ~typed ?only:o.rules ~used_sites file)
      files
    @ typed_stray
  in
  let findings = List.sort Lint.Engine.compare_findings findings in
  (match o.format with
   | Json -> Lint.Report.print_json Format.std_formatter findings
   | Sarif -> Lint.Report.print_sarif Format.std_formatter findings
   | Human ->
     if findings <> [] then Lint.Report.print_human Format.std_formatter findings
     else
       Printf.printf "ncc_lint: %d files clean (rules %s)\n" (List.length files)
         (String.concat " "
            (match o.rules with
             | None -> Lint.Rules.known_ids
             | Some ids -> ids)));
  let errors = Lint.Engine.errors findings in
  if errors <> [] || (o.werror && findings <> []) then exit 1
