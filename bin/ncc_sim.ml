(* ncc_sim: command-line driver for the NCC reproduction.

     ncc_sim list                              protocols, workloads, scenarios
     ncc_sim run -p NCC -w google-f1 -l 20000  one simulation, full stats
     ncc_sim run -p NCC --faults 7             ... under a seeded fault schedule
     ncc_sim chaos -p NCC --seeds 20           seeded chaos sweep, strict checks
     ncc_sim chaos -p NCC --replay 7           replay one chaos seed
     ncc_sim atlas smoke --quick --jobs 4      scenario sweep -> phase diagram
     ncc_sim fig fig6a [--quick]               regenerate a paper figure
     ncc_sim trace -p NCC --out trace.json     traced run -> Chrome/Perfetto JSON
     ncc_sim profile -p NCC                    instrumented run -> metrics JSON *)

open Cmdliner

let protocols =
  [
    ("NCC", Ncc.protocol);
    ("NCC-RW", Ncc.protocol_rw);
    ("NCC-noSR", Ncc.protocol_no_smart_retry);
    ("NCC-noAAT", Ncc.protocol_no_async_aware);
    ("NCC-noRTC", Ncc.protocol_no_rtc);  (* negative control: must fail strict *)
    ("dOCC", Baselines.docc);
    ("d2PL-NW", Baselines.d2pl_no_wait);
    ("d2PL-WW", Baselines.d2pl_wound_wait);
    ("Janus-CC", Baselines.janus_cc);
    ("TAPIR-CC", Baselines.tapir_cc);
    ("MVTO", Baselines.mvto);
    ("NCC-R", Ncc_r.protocol);
    ("NCC-R-def", Ncc_r.protocol_deferred);
  ]

(* Workload lookup is case-insensitive and alias-tolerant ("tao",
   "TAO" and "facebook-tao" all name the TAO workload) — see
   Workload.Registry. Unknown names exit 2 with the valid list. *)
let find_workload ~n_servers wname =
  match Workload.Registry.find ~n_servers wname with
  | Some mk -> mk
  | None ->
    Printf.eprintf "unknown workload %S (one of: %s)\n" wname
      (String.concat ", " (Workload.Registry.names ~n_servers));
    exit 2

let figures =
  [
    ("params", fun ~jobs:_ ~scale:_ -> Experiments.params ());
    ("fig6a", fun ~jobs ~scale -> ignore (Experiments.fig6a ~jobs ~scale ()));
    ("fig6b", fun ~jobs ~scale -> ignore (Experiments.fig6b ~jobs ~scale ()));
    ("fig6c", fun ~jobs ~scale -> ignore (Experiments.fig6c ~jobs ~scale ()));
    ("fig7a", fun ~jobs ~scale -> ignore (Experiments.fig7a ~jobs ~scale ()));
    ("fig7b", fun ~jobs ~scale -> ignore (Experiments.fig7b ~jobs ~scale ()));
    ("fig7c", fun ~jobs ~scale -> ignore (Experiments.fig7c ~jobs ~scale ()));
    ("fig8", fun ~jobs ~scale -> ignore (Experiments.fig8 ~jobs ~scale ()));
    ("ablations", fun ~jobs ~scale -> ignore (Experiments.ablations ~jobs ~scale ()));
    ("internals", fun ~jobs:_ ~scale -> ignore (Experiments.ncc_internals ~scale ()));
    ( "replication",
      fun ~jobs ~scale -> ignore (Experiments.replication ~jobs ~scale ()) );
    ("geo", fun ~jobs ~scale -> ignore (Experiments.geo ~jobs ~scale ()));
  ]

(* Case-insensitive protocol lookup ("ncc", "NCC" and "Ncc" all name
   the same protocol), used by the observability subcommands. *)
let protocol_conv =
  let parse s =
    let ls = String.lowercase_ascii s in
    match
      List.find_opt (fun (n, _) -> String.lowercase_ascii n = ls) protocols
    with
    | Some np -> Ok np
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown protocol %S (one of: %s)" s
              (String.concat ", " (List.map fst protocols))))
  in
  let print ppf (n, _) = Format.pp_print_string ppf n in
  Arg.conv (parse, print)

(* Shared --jobs argument: 1 = sequential (the default, so goldens and
   CI are untouched unless opted in), 0 = one worker per available
   core, N > 1 = that many domains. Parallel output is byte-identical
   to sequential — see docs/performance.md. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent simulations on N domains (0 = one per core; default \
           sequential). Output is byte-identical to --jobs 1.")

let resolve_jobs n = if n = 0 then Harness.Pool.cpu_count () else max 1 n

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let doc = "List available protocols, workloads, figures and atlas scenarios." in
  let f () =
    Printf.printf "protocols: %s\n" (String.concat ", " (List.map fst protocols));
    Printf.printf "workloads: %s\n"
      (String.concat ", " (Workload.Registry.names ~n_servers:8));
    Printf.printf "figures:   %s\n" (String.concat ", " (List.map fst figures));
    Printf.printf "scenarios: %s\n" (String.concat ", " Atlas.Scenario.names)
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const f $ const ())

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let doc = "Run one simulation and print its statistics." in
  let protocol =
    Arg.(
      value
      & opt (enum (List.map (fun (n, p) -> (n, (n, p))) protocols)) ("NCC", Ncc.protocol)
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"Concurrency-control protocol.")
  in
  let workload =
    Arg.(
      value & opt string "google-f1"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let load =
    Arg.(
      value & opt float 10_000.0
      & info [ "l"; "load" ] ~docv:"TXN/S" ~doc:"Offered load, transactions/second.")
  in
  let servers = Arg.(value & opt int 8 & info [ "servers" ] ~doc:"Number of servers.") in
  let clients = Arg.(value & opt int 24 & info [ "clients" ] ~doc:"Number of clients.") in
  let duration =
    Arg.(value & opt float 2.0 & info [ "duration" ] ~doc:"Measured seconds (simulated).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ]
          ~doc:"Replica nodes per server (use 2 with NCC-R / NCC-R-def).")
  in
  let trace =
    Arg.(
      value & opt int 0
      & info [ "trace" ]
          ~doc:"Dump the last N traced events (message sends/handles) after the run.")
  in
  let check =
    Arg.(
      value
      & opt
          (enum
             [
               (* on = streaming (windowed, bounded memory); post =
                  post-hoc strict; off = none. Legacy spellings kept. *)
               ("on", Harness.Runner.Streaming);
               ("post", Harness.Runner.Strict);
               ("off", Harness.Runner.No_check);
               ("none", Harness.Runner.No_check);
               ("ser", Harness.Runner.Serializable);
               ("strict", Harness.Runner.Strict);
             ])
          Harness.Runner.No_check
      & info [ "check" ]
          ~doc:
            "History check: $(b,on) (streaming, bounded memory), $(b,post) \
             (post-hoc strict) or $(b,off). $(b,none)/$(b,ser)/$(b,strict) \
             are accepted as legacy spellings.")
  in
  let faults_seed =
    Arg.(
      value & opt int 0
      & info [ "faults" ] ~docv:"SEED"
          ~doc:
            "Inject a randomized network/node fault schedule derived from SEED \
             (0 = no faults). Pair with $(b,--request-timeout).")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P" ~doc:"Probability each message is dropped.")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"P" ~doc:"Probability each message is duplicated.")
  in
  let request_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt client timeout; the attempt is cancelled and retried \
             when it fires. Required for liveness under message loss.")
  in
  let check_window =
    Arg.(
      value & opt int 1024
      & info [ "check-window" ] ~docv:"N"
          ~doc:"Streaming check: commits per checker epoch (the GC window).")
  in
  let check_ceiling =
    Arg.(
      value & opt (some int) None
      & info [ "check-ceiling" ] ~docv:"N"
          ~doc:
            "Streaming check: fail (exit 1) if the checker's live-set \
             high-water mark exceeds N. CI's memory-bound smoke uses this.")
  in
  let f (pname, p) wname load n_servers n_clients duration seed replicas trace check
      check_window check_ceiling faults_seed drop dup request_timeout =
    if trace > 0 then Sim.Trace.enable ~capacity:(max 4096 trace) ();
    let mk = find_workload ~n_servers wname in
    let w = mk () in
    let warmup = Harness.Runner.default.Harness.Runner.warmup in
      let faults =
        if faults_seed <> 0 then begin
          let topo =
            Cluster.Topology.make ~replicas_per_server:replicas ~n_servers ~n_clients ()
          in
          let f =
            Cluster.Faults.random ~seed:faults_seed
              ~nodes:(List.init (Cluster.Topology.n_nodes topo) Fun.id)
              ~crashable:(Cluster.Topology.servers topo)
              ~horizon:(warmup +. duration)
          in
          { f with Cluster.Faults.drop = max f.Cluster.Faults.drop drop;
                   duplicate = max f.Cluster.Faults.duplicate dup }
        end
        else if drop > 0.0 || dup > 0.0 then
          { Cluster.Faults.none with Cluster.Faults.drop; duplicate = dup }
        else Cluster.Faults.none
      in
      if not (Cluster.Faults.is_none faults) then
        Format.printf "faults: %a@." Cluster.Faults.pp faults;
      let cfg =
        {
          Harness.Runner.default with
          Harness.Runner.seed;
          n_servers;
          n_clients;
          offered_load = load;
          duration;
          check;
          check_window;
          replicas_per_server = replicas;
          faults;
          request_timeout;
        }
      in
      let mx = Obs.Metrics.create () in
      let r = Harness.Runner.run ~label:pname ~metrics:mx p w cfg in
      Printf.printf
        "protocol=%s workload=%s offered=%.0f/s\n\
         committed=%d (%.0f/s)  gave_up=%d  dropped=%d\n\
         latency p50=%.2fms p90=%.2fms p99=%.2fms mean=%.2fms\n\
         messages=%d (%.1f/txn)  peak server utilization=%.2f\n\
         check=%s\n"
        r.Harness.Runner.protocol r.Harness.Runner.workload load r.Harness.Runner.committed
        r.Harness.Runner.throughput r.Harness.Runner.gave_up r.Harness.Runner.dropped
        (r.Harness.Runner.p50 *. 1e3) (r.Harness.Runner.p90 *. 1e3)
        (r.Harness.Runner.p99 *. 1e3)
        (r.Harness.Runner.mean_latency *. 1e3)
        r.Harness.Runner.messages r.Harness.Runner.msgs_per_commit
        r.Harness.Runner.max_utilization r.Harness.Runner.check_result;
      if r.Harness.Runner.aborts <> [] then begin
        Printf.printf "aborts:";
        List.iter (fun (k, n) -> Printf.printf " %s=%d" k n) r.Harness.Runner.aborts;
        print_newline ()
      end;
      if not (List.is_empty r.Harness.Runner.counters) then begin
        Printf.printf "counters:";
        List.iter
          (fun (k, v) -> Printf.printf " %s=%.0f" k v)
          (List.sort
             (fun (a, _) (b, _) -> String.compare a b)
             r.Harness.Runner.counters);
        print_newline ()
      end;
      (match check with
       | Harness.Runner.Streaming ->
         let gauge name =
           match
             List.assoc_opt (name, Obs.Metrics.run_scope) (Obs.Metrics.gauges mx)
           with
           | Some v -> int_of_float v
           | None -> 0
         in
         let live_hw = gauge "checker.live_high_water" in
         Printf.printf
           "checker: live high-water %d, retired %d, epochs %d, stale residue \
            %d (window %d)\n"
           live_hw
           (gauge "checker.retired")
           (gauge "checker.epochs")
           (gauge "checker.stale_residue")
           check_window;
         (match check_ceiling with
          | Some c when live_hw > c ->
            Printf.eprintf "checker live set exceeded ceiling: %d > %d\n" live_hw c;
            exit 1
          | _ -> ())
       | _ -> ());
      if trace > 0 then begin
        Printf.printf "--- last %d traced events (of %d) ---\n" trace
          (Sim.Trace.emitted ());
        Sim.Trace.dump ~last:trace Format.std_formatter
      end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const f $ protocol $ workload $ load $ servers $ clients $ duration $ seed
      $ replicas $ trace $ check $ check_window $ check_ceiling $ faults_seed
      $ drop $ dup $ request_timeout)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* --- scale -------------------------------------------------------------- *)

let scale_cmd =
  let doc =
    "Cluster-scale open-loop run: 64+ servers, 10k+ clients, 10-100M offered \
     transactions, stream-checked in bounded memory. Runs on the timing-wheel \
     scheduler by default; results are byte-identical for any --jobs and \
     either scheduler. Latency is the uniform model (the default per-pair \
     asymmetric table is O(nodes^2) and unusable at this node count)."
  in
  let protocol =
    Arg.(
      value
      & opt (enum (List.map (fun (n, p) -> (n, (n, p))) protocols)) ("NCC", Ncc.protocol)
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"Concurrency-control protocol.")
  in
  let workload =
    Arg.(
      value & opt string "google-f1"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let servers =
    Arg.(value & opt int 64 & info [ "servers" ] ~doc:"Number of servers.")
  in
  let clients =
    Arg.(value & opt int 10_000 & info [ "clients" ] ~doc:"Number of open-loop clients.")
  in
  let txns =
    Arg.(
      value & opt float 1e6
      & info [ "txns" ] ~docv:"N"
          ~doc:
            "Offered transactions over the measurement window (sets the \
             simulated duration: N / load).")
  in
  let load =
    Arg.(
      value & opt float 0.0
      & info [ "l"; "load" ] ~docv:"TXN/S"
          ~doc:"Offered load, transactions/second (0 = 2000 x servers).")
  in
  let sched =
    Arg.(
      value
      & opt
          (enum
             [
               ("wheel", Sim.Engine.Timing_wheel);
               ("heap", Sim.Engine.Binary_heap);
             ])
          Sim.Engine.Timing_wheel
      & info [ "sched" ]
          ~doc:
            "Event queue: $(b,wheel) (O(1) amortised, the default here) or \
             $(b,heap) (O(log n), the historical default elsewhere). Run \
             results are byte-identical either way.")
  in
  let arrival =
    Arg.(
      value
      & opt (enum [ ("constant", `Constant); ("diurnal", `Diurnal); ("bursty", `Bursty) ])
          `Constant
      & info [ "arrival" ]
          ~doc:
            "Arrival-rate curve: $(b,constant) (homogeneous Poisson), \
             $(b,diurnal) (cosine day/night swing) or $(b,bursty) (periodic \
             bursts at 4x the base rate).")
  in
  let curve_period =
    Arg.(
      value & opt float 0.0
      & info [ "curve-period" ] ~docv:"SECONDS"
          ~doc:
            "Period of the diurnal/bursty curve (0 = one diurnal cycle per \
             run, or ten bursts per run).")
  in
  let admission_cap =
    Arg.(
      value & opt int 0
      & info [ "admission-cap" ] ~docv:"N"
          ~doc:
            "System-wide in-flight transaction ceiling; arrivals beyond it \
             are shed (0 = unlimited).")
  in
  let hot_key_threshold =
    Arg.(
      value & opt float 0.0
      & info [ "hot-key-threshold" ] ~docv:"SCORE"
          ~doc:
            "Shed arrivals touching keys whose decaying abort score exceeds \
             SCORE (0 = off).")
  in
  let hot_key_halflife =
    Arg.(
      value & opt float 0.05
      & info [ "hot-key-halflife" ] ~docv:"SECONDS"
          ~doc:"Half-life of the hot-key abort score decay.")
  in
  let store_gc_period =
    Arg.(
      value & opt float 0.0
      & info [ "store-gc" ] ~docv:"SECONDS"
          ~doc:
            "Truncate committed version chains on every server store this \
             often, for bounded-memory long runs (0 = off; pair with --check \
             on or off, never post).")
  in
  let store_gc_keep =
    Arg.(
      value & opt int 4
      & info [ "store-gc-keep" ] ~docv:"N"
          ~doc:"Committed versions kept per key by --store-gc.")
  in
  let check =
    Arg.(
      value
      & opt
          (enum [ ("on", Harness.Runner.Streaming); ("off", Harness.Runner.No_check) ])
          Harness.Runner.Streaming
      & info [ "check" ]
          ~doc:
            "History check: $(b,on) (streaming, bounded memory, the default) \
             or $(b,off). Post-hoc checking is deliberately not offered — it \
             retains the full history.")
  in
  let check_window =
    Arg.(
      value & opt int 4096
      & info [ "check-window" ] ~docv:"N"
          ~doc:"Streaming check: commits per checker epoch (the GC window).")
  in
  let check_ceiling =
    Arg.(
      value & opt (some int) None
      & info [ "check-ceiling" ] ~docv:"N"
          ~doc:
            "Fail (exit 1) if the checker's live-set high-water mark exceeds \
             N. CI's memory-bound smoke uses this.")
  in
  let heap_ceiling_mb =
    Arg.(
      value & opt (some int) None
      & info [ "heap-ceiling-mb" ] ~docv:"MB"
          ~doc:
            "Fail (exit 1) if any run's top-of-heap (Gc top_heap_words, the \
             RSS proxy) exceeds MB megabytes.")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N" ~doc:"Run seeds 1..N (fanned over --jobs).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write per-seed results as JSON rows. Deterministic (host stats \
             stay on stdout): byte-identical for any --jobs and either \
             --sched.")
  in
  let f (pname, p) wname servers clients txns load sched arrival curve_period
      admission_cap hot_key_threshold hot_key_halflife store_gc_period
      store_gc_keep check check_window check_ceiling heap_ceiling_mb seeds out
      jobs =
    let load = if load > 0.0 then load else 2_000.0 *. float_of_int servers in
    let duration = txns /. load in
    let warmup = Float.min 0.5 (duration *. 0.05) in
    let arrival =
      match arrival with
      | `Constant -> Harness.Runner.Constant
      | `Diurnal ->
        let period = if curve_period > 0.0 then curve_period else duration in
        Harness.Runner.Diurnal { period; trough = 0.25 }
      | `Bursty ->
        let period =
          if curve_period > 0.0 then curve_period else duration /. 10.0
        in
        Harness.Runner.Bursty
          { period; burst_len = period /. 5.0; burst_mult = 4.0 }
    in
    let mk = find_workload ~n_servers:servers wname in
    let cfg seed =
      {
        Harness.Runner.default with
        Harness.Runner.seed;
        n_servers = servers;
        n_clients = clients;
        offered_load = load;
        duration;
        warmup;
        drain = warmup;
        latency = Harness.Runner.Uniform { one_way = 250e-6; jitter = 25e-6 };
        check;
        check_window;
        sched;
        arrival;
        admission_cap = (if admission_cap > 0 then Some admission_cap else None);
        hot_key_shed =
          (if hot_key_threshold > 0.0 then
             Some
               {
                 Harness.Runner.shed_threshold = hot_key_threshold;
                 shed_halflife = hot_key_halflife;
               }
           else None);
        store_gc =
          (if store_gc_period > 0.0 then Some (store_gc_period, store_gc_keep)
           else None);
      }
    in
    Printf.printf
      "scale: %s on %s — %d servers, %d clients, %.3g txns offered (%.0f/s \
       over %.2fs simulated)\n\
       %!"
      pname wname servers clients txns load duration;
    let runs =
      Harness.Pool.map
        ~jobs:(resolve_jobs jobs)
        (fun seed ->
          let mx = Obs.Metrics.create () in
          let r = Harness.Runner.run ~label:pname ~metrics:mx p (mk ()) (cfg seed) in
          let g name =
            match
              List.assoc_opt (name, Obs.Metrics.run_scope) (Obs.Metrics.gauges mx)
            with
            | Some v -> v
            | None -> 0.0
          in
          (seed, r, g "gc.top_heap_words", g "checker.live_high_water"))
        (List.init (max 1 seeds) (fun i -> i + 1))
    in
    let worst_heap = ref 0.0 and worst_live = ref 0.0 and violated = ref false in
    List.iter
      (fun (seed, r, top_heap, live_hw) ->
        Printf.printf
          "seed %d: committed=%d (%.0f/s) gave_up=%d dropped=%d p50=%.2fms \
           p99=%.2fms msgs/commit=%.1f check=%s\n"
          seed r.Harness.Runner.committed r.Harness.Runner.throughput
          r.Harness.Runner.gave_up r.Harness.Runner.dropped
          (r.Harness.Runner.p50 *. 1e3)
          (r.Harness.Runner.p99 *. 1e3)
          r.Harness.Runner.msgs_per_commit r.Harness.Runner.check_result;
        (match check with
         | Harness.Runner.Streaming ->
           Printf.printf "  checker live high-water %.0f\n" live_hw
         | _ -> ());
        (* host figure, deliberately not in --out: varies per machine *)
        Printf.printf "  [host] top heap %.1f MB\n" (top_heap *. 8.0 /. 1e6);
        worst_heap := Float.max !worst_heap top_heap;
        worst_live := Float.max !worst_live live_hw;
        let cr = r.Harness.Runner.check_result in
        if String.length cr >= 9 && String.sub cr 0 9 = "VIOLATION" then
          violated := true)
      runs;
    (match out with
     | None -> ()
     | Some path ->
       let rows =
         List.map
           (fun (seed, r, _, _) ->
             Harness.Report.bench_row
               ~experiment:
                 (Printf.sprintf "scale:%s:%s:%dx%d:s%d" pname wname servers
                    clients seed)
               r)
           runs
       in
       write_file path (Harness.Report.bench_doc ~suite:"scale" rows);
       Printf.printf "wrote %s (%d rows)\n" path (List.length rows));
    if !violated then begin
      Printf.eprintf "serializability violation detected\n";
      exit 1
    end;
    (match check_ceiling with
     | Some c when !worst_live > float_of_int c ->
       Printf.eprintf "checker live set exceeded ceiling: %.0f > %d\n"
         !worst_live c;
       exit 1
     | _ -> ());
    match heap_ceiling_mb with
    | Some mb when !worst_heap *. 8.0 /. 1e6 > float_of_int mb ->
      Printf.eprintf "top heap exceeded ceiling: %.1f MB > %d MB\n"
        (!worst_heap *. 8.0 /. 1e6)
        mb;
      exit 1
    | _ -> ()
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const f $ protocol $ workload $ servers $ clients $ txns $ load $ sched
      $ arrival $ curve_period $ admission_cap $ hot_key_threshold
      $ hot_key_halflife $ store_gc_period $ store_gc_keep $ check
      $ check_window $ check_ceiling $ heap_ceiling_mb $ seeds $ out $ jobs_arg)

(* --- chaos -------------------------------------------------------------- *)

let chaos_cmd =
  let doc =
    "Seeded chaos runs: each seed derives a randomized fault schedule (message \
     drop/duplication/extra delay, link partitions, server crashes); the \
     resulting history is checked strictly. Failing seeds print a one-command \
     replay line."
  in
  let protocol =
    Arg.(
      value
      & opt (enum (List.map (fun (n, p) -> (n, (n, p))) protocols)) ("NCC", Ncc.protocol)
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"Concurrency-control protocol.")
  in
  let workload =
    Arg.(
      value & opt string "google-f1"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded runs.")
  in
  let replay =
    Arg.(
      value & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Replay the single run for SEED and print its digest and schedule.")
  in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ]
          ~doc:"Replica nodes per server (use 2 with NCC-R / NCC-R-def).")
  in
  let no_crashes =
    Arg.(
      value & flag
      & info [ "no-crashes" ] ~doc:"Restrict schedules to network faults only.")
  in
  let chaos_check =
    Arg.(
      value
      & opt
          (enum
             [
               ("on", Harness.Runner.Streaming);
               ("post", Harness.Runner.Strict);
               ("off", Harness.Runner.No_check);
             ])
          Harness.Runner.Streaming
      & info [ "check" ]
          ~doc:
            "History check per seed: $(b,on) (streaming, the default), \
             $(b,post) (post-hoc strict) or $(b,off).")
  in
  let f (pname, p) wname seeds replay replicas no_crashes check jobs =
    let base =
      {
        Harness.Chaos.base_default with
        Harness.Runner.replicas_per_server = replicas;
        check;
      }
    in
    let allow_crashes = (not no_crashes) && replicas = 0 in
    let mk = find_workload ~n_servers:base.Harness.Runner.n_servers wname in
    (match replay with
       | Some seed ->
         let r = Harness.Chaos.run ~allow_crashes ~base p (mk ()) ~seed in
         Format.printf "%a@.schedule: %a@." Harness.Chaos.pp_report r
           Cluster.Faults.pp r.Harness.Chaos.faults;
         if not r.Harness.Chaos.ok then exit 1
       | None ->
         (* the matrix runs (possibly in parallel) first; reports print
            afterwards in seed order, identically for any --jobs *)
         let reports =
           Harness.Chaos.run_matrix ~jobs:(resolve_jobs jobs) ~allow_crashes ~base p
             ~workload:mk
             ~seeds:(List.init seeds (fun i -> i + 1))
         in
         List.iter
           (fun r ->
             Format.printf "%a@." Harness.Chaos.pp_report r;
             if not r.Harness.Chaos.ok then
               Printf.printf "  replay: %s\n"
                 (Harness.Chaos.replay_command ~protocol:pname ~workload:wname
                    ~seed:r.Harness.Chaos.seed))
           reports;
         let failed =
           List.length (List.filter (fun r -> not r.Harness.Chaos.ok) reports)
         in
         Printf.printf "%d/%d seeds passed\n" (seeds - failed) seeds;
         if failed > 0 then exit 1)
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const f $ protocol $ workload $ seeds $ replay $ replicas $ no_crashes
      $ chaos_check $ jobs_arg)

(* --- atlas -------------------------------------------------------------- *)

let atlas_cmd =
  let doc =
    "Sweep a named scenario grid — (protocol x knob-point x seed) cells on \
     the --jobs pool, every cell stream-checked — and emit the phase diagram \
     as aligned text plus schema-versioned JSON (byte-identical for any \
     --jobs). See docs/atlas.md and 'ncc_sim list' for scenarios."
  in
  let scenario_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see 'ncc_sim list').")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shorter runs and lighter load per cell.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Output file for the phase-diagram JSON (default \
             atlas_<scenario>.json).")
  in
  let seeds =
    Arg.(
      value & opt (some int) None
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Override the scenario's seed list with seeds 1..N.")
  in
  let check =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "check" ]
          ~doc:
            "Stream-check every cell ($(b,on), the default — violations \
             surface as per-cell verdicts, never a sweep abort) or skip \
             checking ($(b,off)).")
  in
  let f sname quick jobs out seeds check =
    match Atlas.Scenario.find sname with
    | None ->
      Printf.eprintf "unknown scenario %S (one of: %s)\n" sname
        (String.concat ", " Atlas.Scenario.names);
      exit 2
    | Some s ->
      let seeds = Option.map (fun n -> List.init (max 1 n) (fun i -> i + 1)) seeds in
      let sweep =
        Atlas.Driver.run ~jobs:(resolve_jobs jobs) ~quick ~check ?seeds s
      in
      let diagram = Atlas.Diagram.reduce sweep in
      print_string (Atlas.Report.text sweep diagram);
      let path =
        match out with
        | Some p -> p
        | None -> Printf.sprintf "atlas_%s.json" s.Atlas.Scenario.name
      in
      write_file path (Atlas.Report.json sweep diagram);
      Printf.printf "wrote %s (%d cells, %d violations, schema v%d)\n" path
        diagram.Atlas.Diagram.total_cells diagram.Atlas.Diagram.total_violations
        Atlas.Report.schema_version
  in
  Cmd.v (Cmd.info "atlas" ~doc)
    Term.(const f $ scenario_arg $ quick_arg $ jobs_arg $ out $ seeds $ check)

(* --- trace / profile ---------------------------------------------------- *)

(* Shared arguments for the observability subcommands: a small
   instrumented run (trace files grow with load x duration, so the
   defaults are deliberately short — override with --load/--duration). *)
let obs_run_args =
  let protocol =
    Arg.(
      value
      & opt protocol_conv ("NCC", Ncc.protocol)
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:"Concurrency-control protocol (case-insensitive).")
  in
  let workload =
    Arg.(
      value & opt string "google-f1"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let load =
    Arg.(
      value & opt float 2_000.0
      & info [ "l"; "load" ] ~docv:"TXN/S" ~doc:"Offered load, transactions/second.")
  in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"Number of servers.") in
  let clients = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Number of clients.") in
  let duration =
    Arg.(
      value & opt float 0.2
      & info [ "duration" ] ~doc:"Measured seconds (simulated).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let replicas =
    Arg.(
      value & opt int 0
      & info [ "replicas" ]
          ~doc:"Replica nodes per server (use 2 with NCC-R / NCC-R-def).")
  in
  Term.(
    const (fun p w l s c d seed r -> (p, w, l, s, c, d, seed, r))
    $ protocol $ workload $ load $ servers $ clients $ duration $ seed $ replicas)

let obs_run (((pname : string), p), wname, load, n_servers, n_clients, duration, seed, replicas) =
  let mk = find_workload ~n_servers wname in
  let cfg =
      {
        Harness.Runner.default with
        Harness.Runner.seed;
        n_servers;
        n_clients;
        offered_load = load;
        duration;
        warmup = 0.05;
        drain = 0.05;
        replicas_per_server = replicas;
      }
    in
    let rec_ = Obs.Recorder.create () in
    let mx = Obs.Metrics.create () in
    let result = Harness.Runner.run ~label:pname ~obs:rec_ ~metrics:mx p (mk ()) cfg in
    (result, rec_, mx)

let trace_cmd =
  let doc =
    "Run one instrumented simulation and write its span trace as Chrome \
     trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or \
     chrome://tracing. One timeline track per node; transaction lifecycle, \
     retry back-off, message flight/queueing and handler-execution spans."
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file for the trace JSON.")
  in
  let timeline =
    Arg.(
      value & opt int 0
      & info [ "timeline" ] ~docv:"N"
          ~doc:"Also print the last N span events as a text timeline.")
  in
  let f args out timeline =
    let result, rec_, _mx = obs_run args in
    (* In-flight transactions at the horizon legitimately leave spans
       open; anything else is a bug in the instrumentation. *)
    (match Obs.Export.validate ~allow_open:true rec_ with
     | Ok s ->
       Printf.printf
         "trace: %d events (%d complete spans, %d async pairs, %d open at horizon)\n"
         s.Obs.Export.v_events s.Obs.Export.v_complete s.Obs.Export.v_async_pairs
         s.Obs.Export.v_open
     | Error e ->
       Printf.eprintf "trace: INVALID: %s\n" e;
       exit 1);
    write_file out (Obs.Export.chrome_trace_string rec_);
    Printf.printf
      "wrote %s (protocol=%s committed=%d, %.0f tx/s); open in ui.perfetto.dev\n"
      out result.Harness.Runner.protocol result.Harness.Runner.committed
      result.Harness.Runner.throughput;
    if Obs.Recorder.n_dropped rec_ > 0 then
      Printf.printf "note: %d events past the recorder limit were dropped\n"
        (Obs.Recorder.n_dropped rec_);
    if timeline > 0 then
      Obs.Export.timeline ~last:timeline rec_ Format.std_formatter
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const f $ obs_run_args $ out $ timeline)

let profile_cmd =
  let doc =
    "Run one instrumented simulation and emit the run profile as JSON: the \
     run summary plus every metrics cell (per-node counters, gauges, latency \
     histograms with p50/p90/p99/p999)."
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the profile JSON to FILE instead of stdout.")
  in
  let f args out =
    let result, _rec, mx = obs_run args in
    let doc = Harness.Report.profile_json result mx in
    match out with
    | None -> print_endline doc
    | Some path ->
      write_file path doc;
      Printf.printf "wrote %s (protocol=%s committed=%d)\n" path
        result.Harness.Runner.protocol result.Harness.Runner.committed
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const f $ obs_run_args $ out)

(* --- fig ---------------------------------------------------------------- *)

let fig_cmd =
  let doc = "Regenerate one of the paper's figures or tables." in
  let fig_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (n, f) -> (n, (n, f))) figures))) None
      & info [] ~docv:"FIGURE")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small cluster, shorter runs.")
  in
  let f (_, fig) quick jobs =
    let scale = if quick then Experiments.quick_scale else Experiments.full_scale in
    fig ~jobs:(resolve_jobs jobs) ~scale
  in
  Cmd.v (Cmd.info "fig" ~doc) Term.(const f $ fig_arg $ quick_arg $ jobs_arg)

let () =
  let doc = "NCC (OSDI 2023) reproduction: simulated strictly serializable datastores" in
  let info = Cmd.info "ncc_sim" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            scale_cmd;
            chaos_cmd;
            atlas_cmd;
            fig_cmd;
            trace_cmd;
            profile_cmd;
          ]))
