(* Benchmark entry point: regenerates every table and figure of the
   paper's evaluation (§5) on the simulated testbed, then runs Bechamel
   microbenchmarks of the core primitives.

   Usage:
     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- quick        # everything, small scale
     dune exec bench/main.exe -- fig6a fig8   # selected experiments
     dune exec bench/main.exe -- micro        # microbenchmarks only *)

(* ncc-lint: allow R5 — CLI flag, written once before any experiment runs *)
let quick = ref false

(* ncc-lint: allow R5 — CLI flag, written once before any experiment runs *)
let jobs = ref 1

(* ncc-lint: allow R5 — CLI flag, written once before any experiment runs *)
let check_override : Harness.Runner.check_level option ref = ref None

(* --jobs 0 means one worker per available core. *)
let njobs () = if !jobs = 0 then Harness.Pool.cpu_count () else max 1 !jobs

(* Quick runs stream-check every history by default (the scale's
   [check] field); --check on|post|off overrides either tier. *)
let scale () =
  let s = if !quick then Experiments.quick_scale else Experiments.full_scale in
  match !check_override with
  | None -> s
  | Some c -> { s with Experiments.check = c }

(* Scale-adjusted sweeps: the quick cluster (4 servers) saturates at
   roughly half the load of the full one (8 servers). *)
let adj loads = if !quick then List.map (fun l -> l /. 2.0) loads else loads

(* Each experiment also returns its runs as BENCH_*.json rows (the
   tables printed to stdout stay the human-readable face). *)
let sweep_rows fig data =
  List.concat_map
    (fun (pname, points) ->
      List.map
        (fun (load, r) ->
          Harness.Report.bench_row
            ~experiment:(Printf.sprintf "%s:%s@%.0f" fig pname load)
            r)
        points)
    data

let labeled_rows fig data =
  List.map
    (fun (label, r) ->
      Harness.Report.bench_row ~experiment:(fig ^ ":" ^ label) r)
    data

let fig6a () =
  let rows =
    sweep_rows "fig6a"
      (Experiments.fig6a ~jobs:(njobs ()) ~scale:(scale ())
         ~loads:(adj [ 5_000.; 12_000.; 20_000.; 32_000.; 45_000. ])
         ())
  in
  let internals =
    Experiments.ncc_internals ~scale:(scale ())
      ~load:(if !quick then 8_000. else 15_000.)
      ()
  in
  rows @ [ Harness.Report.bench_row ~experiment:"internals:NCC" internals ]

let fig6b () =
  sweep_rows "fig6b"
    (Experiments.fig6b ~jobs:(njobs ()) ~scale:(scale ())
       ~loads:(adj [ 4_000.; 10_000.; 18_000.; 28_000.; 40_000. ])
       ())

let fig6c () =
  sweep_rows "fig6c"
    (Experiments.fig6c ~jobs:(njobs ()) ~scale:(scale ())
       ~loads:(adj [ 4_000.; 9_000.; 15_000.; 21_000.; 27_000. ])
       ())

let fig7a () =
  let load_of name = (if !quick then 0.5 else 1.0) *. Experiments.measured_peak name in
  sweep_rows "fig7a" (Experiments.fig7a ~jobs:(njobs ()) ~scale:(scale ()) ~load_of ())

let fig7b () =
  sweep_rows "fig7b"
    (Experiments.fig7b ~jobs:(njobs ()) ~scale:(scale ())
       ~loads:(adj [ 5_000.; 12_000.; 20_000.; 32_000.; 45_000. ])
       ())

let fig7c () =
  labeled_rows "fig7c"
    (List.map
       (fun (timeout, r) -> (Printf.sprintf "timeout=%g" timeout, r))
       (Experiments.fig7c ~jobs:(njobs ()) ~scale:(scale ())
          ~load:(if !quick then 6_000. else 15_000.)
          ()))

let fig8 () =
  List.concat_map
    (fun (name, ro, rw) ->
      [
        Harness.Report.bench_row ~experiment:("fig8:" ^ name ^ ":ro") ro;
        Harness.Report.bench_row ~experiment:("fig8:" ^ name ^ ":rw") rw;
      ])
    (Experiments.fig8 ~jobs:(njobs ()) ~scale:(scale ()) ())

let ablations () =
  labeled_rows "ablations"
    (Experiments.ablations ~jobs:(njobs ()) ~scale:(scale ()) ())

let replication () =
  labeled_rows "replication"
    (Experiments.replication ~jobs:(njobs ()) ~scale:(scale ())
       ~load:(if !quick then 5_000. else 10_000.)
       ())

let geo () =
  labeled_rows "geo"
    (Experiments.geo ~jobs:(njobs ()) ~scale:(scale ())
       ~load:(if !quick then 4_000. else 8_000.)
       ())

let params () =
  Experiments.params ();
  []

(* --- Bechamel microbenchmarks of the core primitives ----------------- *)

(* In-binary "before" reference for the R16/R17 allocation fixes in
   lib/sim (docs/performance.md, allocation discipline). [Heap_ref]
   replicates the pre-SoA event heap: one entry record per push (the
   float prio field is boxed in the mixed record) and a Some-wrapped
   tuple per pop. Kept here, not in lib/, so the shipped code stays
   on the non-allocating path while the JSON keeps a before/after
   pair. *)
module Heap_ref = struct
  type 'a entry = { prio : float; seq : int; payload : 'a }
  type 'a t = { mutable a : 'a entry array; mutable size : int; mutable next_seq : int }

  let create () = { a = [||]; size = 0; next_seq = 0 }

  let before x y =
    x.prio < y.prio
    (* ncc-lint: allow R8 — reference copy of the heap's exact-tie seq fallback *)
    || (x.prio = y.prio && x.seq < y.seq)

  let swap t i j =
    let tmp = t.a.(i) in
    t.a.(i) <- t.a.(j);
    t.a.(j) <- tmp

  let push t prio payload =
    let e = { prio; seq = t.next_seq; payload } in
    t.next_seq <- t.next_seq + 1;
    if t.size = Array.length t.a then
      t.a <- Array.append t.a (Array.make (max 8 (t.size + 1)) e);
    t.a.(t.size) <- e;
    t.size <- t.size + 1;
    let i = ref t.size in
    decr i;
    while !i > 0 && before t.a.(!i) t.a.((!i - 1) / 2) do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let root = t.a.(0) in
      t.size <- t.size - 1;
      t.a.(0) <- t.a.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < t.size && before t.a.(l) t.a.(!m) then m := l;
        if r < t.size && before t.a.(r) t.a.(!m) then m := r;
        if !m <> !i then begin
          swap t !i !m;
          i := !m
        end
        else continue := false
      done;
      Some (root.prio, root.payload)
    end
end

(* In-binary "before" reference for the in-flight message arena: one
   fresh delivery closure per message, capturing (src, msg) — the
   discipline Cluster.Net's clean path used before delivery thunks
   were parked in the freelist arena. Kept here, not in lib/, like
   [Heap_ref]: the shipped code stays on the zero-allocation path
   while BENCH_*.json keeps a before/after pair. The ref isolates the
   allocation discipline (latency draw + closure + schedule +
   handler); the net.arena row times the full dispatch path, which
   does strictly more work per message yet allocates nothing. *)
module Net_closure_ref = struct
  type t = {
    engine : Sim.Engine.t;
    rng : Sim.Rng.t;
    latency : Cluster.Latency.t;
    mutable handler : src:int -> int -> unit;
    mutable sent : int;
  }

  let create engine rng latency =
    { engine; rng; latency; handler = (fun ~src:_ _ -> ()); sent = 0 }

  let send t ~src ~dst msg =
    t.sent <- t.sent + 1;
    let delay = Cluster.Latency.sample t.rng t.latency ~src ~dst in
    Sim.Engine.schedule t.engine ~delay (fun () -> t.handler ~src msg)
end

let micro () =
  let open Bechamel in
  let open Toolkit in
  print_string "\n== Microbenchmarks (core primitives) ==\n";
  let store_write =
    Test.make ~name:"store.write+commit x100"
      (Staged.stage (fun () ->
           let s = Mvstore.Store.create () in
           for i = 1 to 100 do
             let v =
               Mvstore.Store.write s (i mod 10) i
                 ~ts:(Kernel.Ts.make ~time:i ~cid:1)
                 ~writer:i
             in
             Mvstore.Store.commit_version v
           done))
  in
  let store_read =
    let s = Mvstore.Store.create () in
    for i = 1 to 10 do
      Mvstore.Store.commit_version
        (Mvstore.Store.write s i i ~ts:(Kernel.Ts.make ~time:i ~cid:1) ~writer:i)
    done;
    Test.make ~name:"store.read x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             ignore (Mvstore.Store.read s (i mod 10) ~ts:(Kernel.Ts.make ~time:i ~cid:2))
           done))
  in
  let safeguard =
    let results =
      List.init 16 (fun i ->
          {
            Ncc.Msg.r_key = i;
            r_value = i;
            r_vid = i;
            r_tw = Kernel.Ts.make ~time:10 ~cid:1;
            r_tr = Kernel.Ts.make ~time:20 ~cid:1;
            r_is_write = i mod 4 = 0;
            r_prev_vid = 0;
          })
    in
    Test.make ~name:"safeguard check (16 pairs)"
      (Staged.stage (fun () -> ignore (Ncc.Client.safeguard results)))
  in
  let heap =
    Test.make ~name:"heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Sim.Heap.create () in
           for i = 1 to 100 do
             Sim.Heap.push h (float_of_int (i * 7919 mod 100)) i
           done;
           while Option.is_some (Sim.Heap.pop h) do
             ()
           done))
  in
  (* Before/after pair for the R16/R17 heap fix, in the shape the sim
     engine actually runs it: a persistent 1k-entry timer heap under
     pop+push churn. The SoA heap's non-allocating top_prio/pop_min
     path against the boxed-entry AoS reference it replaced (one mixed
     record with a boxed float per push, one Some-wrapped tuple per
     pop). A cold drain of a tiny heap would hide the difference —
     bump allocation is nearly free until steady-state churn keeps
     the minor collector busy. *)
  let heap_drain =
    let h = Sim.Heap.create () in
    for i = 1 to 1024 do
      Sim.Heap.push h (float_of_int (i * 7919 mod 1000)) i
    done;
    Test.make ~name:"heap churn pop_min+push x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             ignore (Sim.Heap.top_prio h);
             let v = Sim.Heap.pop_min h in
             Sim.Heap.push h (float_of_int (i * 7919 mod 1000)) v
           done))
  in
  let heap_boxed_ref =
    let h = Heap_ref.create () in
    for i = 1 to 1024 do
      Heap_ref.push h (float_of_int (i * 7919 mod 1000)) i
    done;
    Test.make ~name:"heap churn boxed-entry ref x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             match Heap_ref.pop h with
             | Some (_, v) -> Heap_ref.push h (float_of_int (i * 7919 mod 1000)) v
             | None -> ()
           done))
  in
  (* Before/after rows for the tentpole scheduler change: steady-state
     event churn (top_prio + pop_min + schedule) against a persistent
     structure holding N pending events, at 1k / 100k / 1M. The heap
     pays O(log n) sift per operation — ~20 levels at 1M — while the
     wheel's slot insert and bucket drain are O(1) amortised, so the
     gap must widen with N (the scale CI asserts the 1M pair). Each
     pop reschedules at popped-prio + span, keeping density constant:
     the workload every long open-loop run presents. Density matches
     what a cluster-scale run holds: pending events are in-flight
     messages and timers, all due within a few milliseconds of now
     (one-way delays are ~100us-1ms), so 1M pending events span ~10ms
     of virtual time — about 100 events per 1us tick. *)
  let engine_churn =
    List.concat_map
      (fun (tag, n) ->
        let span_ticks = max 256 (n / 100) in
        let span = float_of_int span_ticks *. 1e-6 in
        let prio i = float_of_int (i * 7919 mod span_ticks) *. 1e-6 in
        let wheel =
          let w = Sim.Wheel.create () in
          for i = 1 to n do
            Sim.Wheel.schedule w (prio i) i
          done;
          Test.make ~name:(Printf.sprintf "engine.wheel churn %s" tag)
            (Staged.stage (fun () ->
                 for _ = 1 to 100 do
                   let p = Sim.Wheel.top_prio w in
                   let v = Sim.Wheel.pop_min w in
                   Sim.Wheel.schedule w (p +. span) v
                 done))
        in
        let heap =
          let h = Sim.Heap.create () in
          for i = 1 to n do
            Sim.Heap.push h (prio i) i
          done;
          Test.make ~name:(Printf.sprintf "engine.heap churn %s" tag)
            (Staged.stage (fun () ->
                 for _ = 1 to 100 do
                   let p = Sim.Heap.top_prio h in
                   let v = Sim.Heap.pop_min h in
                   Sim.Heap.push h (p +. span) v
                 done))
        in
        [ wheel; heap ])
      [ ("1k", 1_000); ("100k", 100_000); ("1M", 1_000_000) ]
  in
  (* Before/after pair for the in-flight message arena: ping-pong one
     message at a time through the real network runtime (send + full
     dispatch, zero words allocated per message at steady state)
     against [Net_closure_ref]'s fresh-closure-per-send discipline. *)
  let net_arena =
    let topo =
      Cluster.Topology.make ~replicas_per_server:0 ~n_servers:1 ~n_clients:1 ()
    in
    let engine = Sim.Engine.create () in
    let rng = Sim.Rng.create 1 in
    let latency = Cluster.Latency.uniform ~one_way:1e-4 ~jitter_mean:1e-6 in
    let net =
      Cluster.Net.create engine rng topo ~latency
        ~clock_of:(fun _ -> Sim.Clock.perfect)
    in
    let served = ref 0 in
    Cluster.Net.set_handler net 0 ~cost:(fun _ -> 10e-6)
      ~handler:(fun ~src:_ _ -> incr served);
    Test.make ~name:"net.arena send+deliver x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             Cluster.Net.send net ~src:1 ~dst:0 i;
             Sim.Engine.run engine
           done))
  in
  let net_closure_ref =
    let engine = Sim.Engine.create () in
    let rng = Sim.Rng.create 1 in
    let latency = Cluster.Latency.uniform ~one_way:1e-4 ~jitter_mean:1e-6 in
    let t = Net_closure_ref.create engine rng latency in
    let served = ref 0 in
    t.Net_closure_ref.handler <- (fun ~src:_ _ -> incr served);
    Test.make ~name:"net closure-per-send ref x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             Net_closure_ref.send t ~src:1 ~dst:0 i;
             Sim.Engine.run engine
           done))
  in
  (* Before/after pair for the R17 net-trace fix: send_faulty's trace
     helper used to run kasprintf unconditionally — every message
     built its trace string even with tracing off — and the fixed
     helper checks Sim.Trace.active first, paying only a load and a
     branch on the (default) cold side. Both rows run with tracing
     off, which is how every benchmark and test runs. *)
  let trace_guarded =
    let sink = ref 0 in
    Test.make ~name:"net trace fmt guarded x100 (off)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             if Sim.Trace.active () then
               Format.kasprintf
                 (fun s -> sink := !sink + String.length s)
                 "%d -> %d (arrives +%.0fus)" i (i + 1) 3.5
           done))
  in
  let trace_eager_ref =
    let sink = ref 0 in
    Test.make ~name:"net trace fmt eager ref x100 (off)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             Format.kasprintf
               (fun s ->
                 if Sim.Trace.active () then sink := !sink + String.length s)
               "%d -> %d (arrives +%.0fus)" i (i + 1) 3.5
           done))
  in
  let zipf =
    let z = Sim.Rng.zipf_create ~n:1_000_000 ~theta:0.8 in
    let r = Sim.Rng.create 1 in
    Test.make ~name:"zipf draw x100"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Sim.Rng.zipf_draw r z)
           done))
  in
  (* Before/after pair for the atlas Zipf memo: a grid re-instantiates
     the same (n, theta) table once per (protocol x seed) cell, and
     each zipf_create pays the zeta partial sum over all n keys. The
     memo hit — an assoc-list probe over the few distinct tables a
     sweep ever holds — is what cells actually pay after the driver's
     sequential prewarm. Sized at the atlas default key space. *)
  let zipf_table_memo_hit =
    let m = Atlas.Driver.Zipf_memo.create () in
    ignore (Atlas.Driver.Zipf_memo.get m ~n:100_000 ~theta:0.8);
    Test.make ~name:"atlas zipf table memo hit"
      (Staged.stage (fun () ->
           ignore (Atlas.Driver.Zipf_memo.get m ~n:100_000 ~theta:0.8)))
  in
  let zipf_table_create_ref =
    Test.make ~name:"atlas zipf table create ref"
      (Staged.stage (fun () ->
           ignore (Sim.Rng.zipf_create ~n:100_000 ~theta:0.8)))
  in
  (* Read lookup on a deep chain: the tw binary search that replaced
     the old linear version-list scan, next to an inline linear-scan
     reference over the same (tw, value) data for an in-binary
     before/after. *)
  let store_lookup_deep =
    let s = Mvstore.Store.create () in
    for i = 1 to 256 do
      Mvstore.Store.commit_version
        (Mvstore.Store.write s 1 i ~ts:(Kernel.Ts.make ~time:i ~cid:1) ~writer:i)
    done;
    Test.make ~name:"store.version_at 256-chain x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             ignore
               (Mvstore.Store.version_at s 1
                  ~ts:(Kernel.Ts.make ~time:(i * 2) ~cid:2))
           done))
  in
  let store_lookup_linear_ref =
    let tws = List.init 256 (fun i -> (Kernel.Ts.make ~time:(256 - i) ~cid:1, i)) in
    Test.make ~name:"version lookup linear-list ref x100"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             let ts = Kernel.Ts.make ~time:(i * 2) ~cid:2 in
             ignore
               (List.find_opt (fun (tw, _) -> Kernel.Ts.(tw <= ts)) tws)
           done))
  in
  (* Message dispatch through the fault-free network runtime (the
     preallocated-completion fast path): one node servicing a burst. *)
  let net_dispatch =
    let topo = Cluster.Topology.make ~replicas_per_server:0 ~n_servers:1 ~n_clients:1 () in
    Test.make ~name:"net.dispatch x100"
      (Staged.stage (fun () ->
           let engine = Sim.Engine.create () in
           let rng = Sim.Rng.create 1 in
           let latency = Cluster.Latency.uniform ~one_way:1e-4 ~jitter_mean:1e-6 in
           let net =
             Cluster.Net.create engine rng topo ~latency
               ~clock_of:(fun _ -> Sim.Clock.perfect)
           in
           let served = ref 0 in
           Cluster.Net.set_handler net 0 ~cost:(fun _ -> 10e-6)
             ~handler:(fun ~src:_ _ -> incr served);
           for i = 1 to 100 do
             Cluster.Net.send net ~src:1 ~dst:0 i
           done;
           Sim.Engine.run engine;
           assert (!served = 100)))
  in
  (* Sorted whole-table traversal: the per-store key cache vs a
     fresh sort every call (the pre-cache behavior). *)
  let tbl = Hashtbl.create 1024 in
  for i = 1 to 1000 do
    Hashtbl.replace tbl (i * 7919 mod 4096) i
  done;
  let detmap_uncached =
    Test.make ~name:"detmap.iter_sorted 1k keys"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Kernel.Detmap.iter_sorted (fun _ v -> acc := !acc + v) tbl))
  in
  let detmap_cached =
    let kc = Kernel.Detmap.cache () in
    Test.make ~name:"detmap.iter_sorted_cached 1k keys"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           Kernel.Detmap.iter_sorted_cached kc (fun _ v -> acc := !acc + v) tbl))
  in
  let checker =
    Test.make ~name:"checker 1k-txn history"
      (Staged.stage (fun () ->
           let t = Checker.Rsg.create () in
           for i = 1 to 1000 do
             Checker.Rsg.record_commit t ~txn:i
               ~start:(float_of_int (2 * i))
               ~finish:(float_of_int ((2 * i) + 1))
               ~reads:[ (1, 99 + i) ]
               ~writes:[ (1, 100 + i) ]
           done;
           Checker.Rsg.record_version_order t 1 (List.init 1001 (fun i -> 100 + i));
           match Checker.Rsg.check t ~strict:true with
           | Checker.Verdict.Ok -> ()
           | Checker.Verdict.Violation a ->
             failwith (Checker.Verdict.anomaly_to_string a)))
  in
  (* Per-commit cost of the streaming checker on the same serial
     history: version announcement + record + amortized epoch checks
     and retirement with the default-ish window. Divide by 1000 for
     the per-commit figure the docs quote. *)
  let checker_stream =
    Test.make ~name:"checker.stream 1k-commit feed"
      (Staged.stage (fun () ->
           let step = ref 0 in
           let t =
             Checker.Stream.create ~epoch:256
               ~watermark:(fun () -> float_of_int (2 * (!step + 1)))
               ()
           in
           Checker.Stream.observe_version t ~key:1 ~vid:100 ~writer:0 ~prev:None
             ~next:None;
           for i = 1 to 1000 do
             step := i;
             Checker.Stream.observe_version t ~key:1 ~vid:(100 + i) ~writer:i
               ~prev:(Some (99 + i)) ~next:None;
             Checker.Stream.observe_commit t ~txn:i
               ~start:(float_of_int (2 * i))
               ~finish:(float_of_int ((2 * i) + 1))
               ~reads:[ (1, 99 + i) ]
               ~writes:[ (1, 100 + i) ]
           done;
           match Checker.Stream.finalize t with
           | Checker.Verdict.Ok -> ()
           | Checker.Verdict.Violation a ->
             failwith (Checker.Verdict.anomaly_to_string a)))
  in
  let tests =
    [
      store_write;
      store_read;
      store_lookup_deep;
      store_lookup_linear_ref;
      net_dispatch;
      detmap_uncached;
      detmap_cached;
      safeguard;
      heap;
      heap_drain;
      heap_boxed_ref;
      net_arena;
      net_closure_ref;
      trace_guarded;
      trace_eager_ref;
      zipf;
      zipf_table_memo_hit;
      zipf_table_create_ref;
      checker;
      checker_stream;
    ]
    @ engine_churn
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  (* Each estimate also lands in BENCH_*.json as a micro row. Micro
     rows are host timings (not deterministic), so parity byte-diffs of
     the JSON must select experiments that exclude [micro]. *)
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let rows = ref [] in
      Kernel.Detmap.iter_sorted
        (fun sub raw ->
          match Analyze.one ols instance raw with
          | ols_result ->
            (match Analyze.OLS.estimates ols_result with
             | Some [ est ] ->
               Printf.printf "%-36s %12.1f ns/run\n" sub est;
               rows := Harness.Report.micro_row ~name:sub ~ns_per_run:est :: !rows
             | Some _ | None -> Printf.printf "%-36s (no estimate)\n" sub)
          | exception e ->
            Printf.printf "%-36s (failed: %s)\n" sub (Printexc.to_string e))
        results;
      List.rev !rows)
    tests

(* --- GC telemetry: allocation volume of a simulation run --------------- *)

(* One NCC run per scheduler, reported as gc: rows from the runner's
   GC gauges (minor words allocated, major collections, top heap
   words). Host-dependent figures, like micro rows: allocation counts
   shift with the compiler and runtime, so parity byte-diffs must
   select experiments that exclude [gcstats]. The pair documents that
   switching the event queue to the wheel does not regress allocation
   while the run results themselves stay byte-identical. *)
let gcstats () =
  print_string "\n== GC telemetry (simulation runs) ==\n";
  let s = scale () in
  let base = Experiments.base_cfg s in
  let base =
    { base with Harness.Runner.offered_load = (if !quick then 4_000. else 10_000.) }
  in
  let mk =
    match Workload.Registry.find ~n_servers:s.Experiments.n_servers "google-f1" with
    | Some mk -> mk
    | None -> failwith "gcstats: google-f1 workload missing"
  in
  List.map
    (fun (name, sched) ->
      let mx = Obs.Metrics.create () in
      let r =
        Harness.Runner.run ~label:"NCC" ~metrics:mx Ncc.protocol (mk ())
          { base with Harness.Runner.sched }
      in
      let gauge g =
        match List.assoc_opt (g, Obs.Metrics.run_scope) (Obs.Metrics.gauges mx) with
        | Some v -> v
        | None -> 0.0
      in
      let minor_words = gauge "gc.minor_words" in
      let major = int_of_float (gauge "gc.major_collections") in
      let top_heap = int_of_float (gauge "gc.top_heap_words") in
      Printf.printf
        "%-24s committed=%d  minor_words=%.3e  words/commit=%.0f  majors=%d  \
         top_heap=%d\n"
        name r.Harness.Runner.committed minor_words
        (if r.Harness.Runner.committed = 0 then 0.0
         else minor_words /. float_of_int r.Harness.Runner.committed)
        major top_heap;
      Harness.Report.gc_row ~experiment:name ~minor_words
        ~major_collections:major ~top_heap_words:top_heap)
    [
      ("NCC:heap", Sim.Engine.Binary_heap);
      ("NCC:wheel", Sim.Engine.Timing_wheel);
    ]

(* --- analyzer cost: the typed + race lint planes, timed --------------- *)

(* One full typed-engine pass (R7-R10 + the race plane R12-R15 + the
   allocation plane R16-R19) over the workspace's .cmt files, reported
   as the "lint.typed" micro row, plus an isolated run of just the
   allocation plane over the already-loaded units as "lint.alloc", so
   analyzer cost is tracked next to the primitive timings. Host
   wall-clock figures, like every micro row: parity byte-diffs must
   select experiments that exclude them. Contributes no rows when no
   build tree is visible (an installed binary run outside the
   workspace). *)
let lint () =
  let root = "_build/default" in
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    Printf.printf "lint.typed: no %s under the cwd; skipping\n" root;
    []
  end
  else begin
    let rec walk path acc =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.sort String.compare
        |> List.fold_left (fun acc n -> walk (Filename.concat path n) acc) acc
      else if Filename.check_suffix path ".cmt" then path :: acc
      else acc
    in
    let cmts = List.rev (walk root []) in
    (* ncc-lint: allow R2 — wall-clock times the analyzer itself *)
    let t0 = Unix.gettimeofday () in
    let findings, _ = Lint.Typed_engine.lint_cmts cmts in
    (* ncc-lint: allow R2 — wall-clock times the analyzer itself *)
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf "%-36s %12.1f ns/run  (%d units, %d pre-waiver findings)\n"
      "lint.typed" (elapsed *. 1e9) (List.length cmts) (List.length findings);
    let units, _ = Lint.Typed_engine.load_units cmts in
    (* ncc-lint: allow R2 — wall-clock times the analyzer itself *)
    let t0 = Unix.gettimeofday () in
    let alloc_findings = Lint.Typed_engine.alloc_pass units in
    (* ncc-lint: allow R2 — wall-clock times the analyzer itself *)
    let elapsed_alloc = Unix.gettimeofday () -. t0 in
    Printf.printf "%-36s %12.1f ns/run  (%d units, %d pre-waiver findings)\n"
      "lint.alloc" (elapsed_alloc *. 1e9) (List.length units)
      (List.length alloc_findings);
    [
      Harness.Report.micro_row ~name:"lint.typed" ~ns_per_run:(elapsed *. 1e9);
      Harness.Report.micro_row ~name:"lint.alloc"
        ~ns_per_run:(elapsed_alloc *. 1e9);
    ]
  end

(* --- driver ----------------------------------------------------------- *)

let all_experiments =
  [
    ("params", params);
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("fig6c", fig6c);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig7c", fig7c);
    ("fig8", fig8);
    ("ablations", ablations);
    ("replication", replication);
    ("geo", geo);
    ("micro", micro);
    ("gcstats", gcstats);
    ("lint", lint);
  ]

let () =
  let rec parse = function
    | [] -> []
    | "quick" :: rest ->
      quick := true;
      parse rest
    | ("-j" | "--jobs") :: n :: rest ->
      jobs := int_of_string n;
      parse rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      jobs := int_of_string (String.sub arg 7 (String.length arg - 7));
      parse rest
    | "--check" :: lvl :: rest ->
      (check_override :=
         match lvl with
         | "on" -> Some Harness.Runner.Streaming
         | "post" -> Some Harness.Runner.Strict
         | "off" -> Some Harness.Runner.No_check
         | _ ->
           Printf.eprintf "unknown --check level %S (want on, post or off)\n" lvl;
           exit 2);
      parse rest
    | arg :: rest -> arg :: parse rest
  in
  let args = parse (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match args with
    | [] -> all_experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" n
              (String.concat ", " (List.map fst all_experiments));
            exit 2)
        names
  in
  Printf.printf "NCC reproduction benchmarks (%s scale, %d job%s)\n"
    (if !quick then "quick" else "full")
    (njobs ())
    (if njobs () = 1 then "" else "s");
  let rows =
    List.concat_map
      (fun (name, f) ->
        (* ncc-lint: allow R2 — wall-clock times the bench harness itself *)
        let t0 = Unix.gettimeofday () in
        let rows = f () in
        (* ncc-lint: allow R2 — wall-clock times the bench harness itself *)
        let elapsed = Unix.gettimeofday () -. t0 in
        Printf.printf "[%s done in %.1fs host wall-clock — not simulated time]\n%!"
          name elapsed;
        rows)
      selected
  in
  (* Machine-readable mirror of the run: every simulated result as one
     row, for CI artifacts and cross-run diffing. *)
  let suite = if !quick then "quick" else "full" in
  let path = Printf.sprintf "BENCH_%s.json" suite in
  let oc = open_out path in
  output_string oc (Harness.Report.bench_doc ~suite rows);
  close_out oc;
  Printf.printf "[wrote %s: %d rows]\n" path (List.length rows)
